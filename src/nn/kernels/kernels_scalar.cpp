// Scalar-fp32 reference kernels — the bitwise oracle every SIMD backend is
// tested against. These are the PR-1 packed/register-blocked loops moved
// out of tensor.cpp verbatim: each output element reduces K serially in
// ascending order with one multiply and one add per step, so any backend
// that preserves that per-element operation sequence agrees bit-for-bit.
#include "nn/kernels/kernels.h"

namespace netfm::nn::kernels {
namespace {

template <bool Accumulate>
void gemm_rows_impl(MatRef a, const float* packed_b, std::size_t K,
                    std::size_t N, float* c, std::size_t row_lo,
                    std::size_t row_hi) {
  for (std::size_t i = row_lo; i < row_hi; i += kMR) {
    const std::size_t mr = std::min(kMR, row_hi - i);
    for (std::size_t jp = 0; jp < N; jp += kNR) {
      const std::size_t nr = std::min(kNR, N - jp);
      const float* bp = packed_b + jp * K;
      float acc[kMR][kNR] = {};
      if (mr == kMR) {
        for (std::size_t kk = 0; kk < K; ++kk) {
          const float* brow = bp + kk * kNR;
          for (std::size_t r = 0; r < kMR; ++r) {
            const float av = a.p[(i + r) * a.rs + kk * a.cs];
            for (std::size_t cc = 0; cc < kNR; ++cc)
              acc[r][cc] += av * brow[cc];
          }
        }
      } else {
        for (std::size_t kk = 0; kk < K; ++kk) {
          const float* brow = bp + kk * kNR;
          for (std::size_t r = 0; r < mr; ++r) {
            const float av = a.p[(i + r) * a.rs + kk * a.cs];
            for (std::size_t cc = 0; cc < kNR; ++cc)
              acc[r][cc] += av * brow[cc];
          }
        }
      }
      for (std::size_t r = 0; r < mr; ++r) {
        float* crow = c + (i + r) * N + jp;
        if constexpr (Accumulate) {
          for (std::size_t cc = 0; cc < nr; ++cc) crow[cc] += acc[r][cc];
        } else {
          for (std::size_t cc = 0; cc < nr; ++cc) crow[cc] = acc[r][cc];
        }
      }
    }
  }
}

void gemm_rows_scalar(MatRef a, const float* packed_b, std::size_t K,
                      std::size_t N, float* c, std::size_t row_lo,
                      std::size_t row_hi, bool accumulate) {
  if (accumulate)
    gemm_rows_impl<true>(a, packed_b, K, N, c, row_lo, row_hi);
  else
    gemm_rows_impl<false>(a, packed_b, K, N, c, row_lo, row_hi);
}

void weighted_sum_scalar(const float* w, const float* rows, std::size_t t,
                         std::size_t dk, float* out) {
  for (std::size_t c = 0; c < dk; ++c) out[c] = 0.0f;
  for (std::size_t j = 0; j < t; ++j) {
    const float wj = w[j];
    const float* row = rows + j * dk;
    for (std::size_t c = 0; c < dk; ++c) out[c] += wj * row[c];
  }
}

void weighted_sum_acc_scalar(const float* w, const float* rows, std::size_t t,
                             std::size_t dk, float* out) {
  // Same reduction as weighted_sum_scalar, seeded from the existing out
  // values instead of zero.
  for (std::size_t j = 0; j < t; ++j) {
    const float wj = w[j];
    const float* row = rows + j * dk;
    for (std::size_t c = 0; c < dk; ++c) out[c] += wj * row[c];
  }
}

void gemm_i8_scalar(const std::int8_t* a, const std::int8_t* bt,
                    std::size_t M, std::size_t N, std::size_t kp,
                    std::int32_t* c) {
  for (std::size_t i = 0; i < M; ++i) {
    const std::int8_t* arow = a + i * kp;
    for (std::size_t j = 0; j < N; ++j) {
      const std::int8_t* brow = bt + j * kp;
      std::int32_t acc = 0;
      for (std::size_t k = 0; k < kp; ++k)
        acc += static_cast<std::int32_t>(arow[k]) *
               static_cast<std::int32_t>(brow[k]);
      c[i * N + j] = acc;
    }
  }
}

}  // namespace

extern const KernelTable kScalarTable;
const KernelTable kScalarTable = {
    "scalar",
    gemm_rows_scalar,
    weighted_sum_scalar,
    weighted_sum_acc_scalar,
    gemm_i8_scalar,
};

}  // namespace netfm::nn::kernels
