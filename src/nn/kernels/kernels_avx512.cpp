// AVX-512 kernels (F + BW). One 16-float zmm covers a full kNR panel row.
// Same bitwise contract as the AVX2 backend: independent-output
// vectorization only, separate mul + add (no FMA), serial K per element.
// Compiled with -mavx512f -mavx512bw -mavx512vl (see src/CMakeLists.txt);
// entered only after the dispatcher verified avx512f+avx512bw at runtime.
#include <immintrin.h>

#include "nn/kernels/kernels.h"

namespace netfm::nn::kernels {
namespace {

void gemm_rows_avx512(MatRef a, const float* packed_b, std::size_t K,
                      std::size_t N, float* c, std::size_t row_lo,
                      std::size_t row_hi, bool accumulate) {
  for (std::size_t i = row_lo; i < row_hi; i += kMR) {
    const std::size_t mr = std::min(kMR, row_hi - i);
    for (std::size_t jp = 0; jp < N; jp += kNR) {
      const std::size_t nr = std::min(kNR, N - jp);
      const float* bp = packed_b + jp * K;
      __m512 acc[kMR];
      for (std::size_t r = 0; r < mr; ++r) acc[r] = _mm512_setzero_ps();
      for (std::size_t kk = 0; kk < K; ++kk) {
        const __m512 b0 = _mm512_loadu_ps(bp + kk * kNR);
        for (std::size_t r = 0; r < mr; ++r) {
          const __m512 av =
              _mm512_set1_ps(a.p[(i + r) * a.rs + kk * a.cs]);
          acc[r] = _mm512_add_ps(acc[r], _mm512_mul_ps(av, b0));
        }
      }
      for (std::size_t r = 0; r < mr; ++r) {
        float* crow = c + (i + r) * N + jp;
        if (nr == kNR) {
          if (accumulate)
            _mm512_storeu_ps(crow,
                             _mm512_add_ps(_mm512_loadu_ps(crow), acc[r]));
          else
            _mm512_storeu_ps(crow, acc[r]);
        } else {
          const __mmask16 edge =
              static_cast<__mmask16>((1u << nr) - 1u);
          if (accumulate)
            _mm512_mask_storeu_ps(
                crow, edge,
                _mm512_add_ps(_mm512_maskz_loadu_ps(edge, crow), acc[r]));
          else
            _mm512_mask_storeu_ps(crow, edge, acc[r]);
        }
      }
    }
  }
}

void weighted_sum_avx512(const float* w, const float* rows, std::size_t t,
                         std::size_t dk, float* out) {
  std::size_t c = 0;
  for (; c + 16 <= dk; c += 16) {
    __m512 acc = _mm512_setzero_ps();
    for (std::size_t j = 0; j < t; ++j)
      acc = _mm512_add_ps(
          acc, _mm512_mul_ps(_mm512_set1_ps(w[j]),
                             _mm512_loadu_ps(rows + j * dk + c)));
    _mm512_storeu_ps(out + c, acc);
  }
  if (c < dk) {
    const __mmask16 edge =
        static_cast<__mmask16>((1u << (dk - c)) - 1u);
    __m512 acc = _mm512_setzero_ps();
    for (std::size_t j = 0; j < t; ++j)
      acc = _mm512_add_ps(
          acc, _mm512_mul_ps(_mm512_set1_ps(w[j]),
                             _mm512_maskz_loadu_ps(edge, rows + j * dk + c)));
    _mm512_mask_storeu_ps(out + c, edge, acc);
  }
}

void weighted_sum_acc_avx512(const float* w, const float* rows, std::size_t t,
                             std::size_t dk, float* out) {
  // weighted_sum_avx512 with the accumulator seeded from out: loading the
  // previous run's fp32 partials is a value-preserving round-trip, so the
  // add sequence per element matches one contiguous weighted_sum.
  std::size_t c = 0;
  for (; c + 16 <= dk; c += 16) {
    __m512 acc = _mm512_loadu_ps(out + c);
    for (std::size_t j = 0; j < t; ++j)
      acc = _mm512_add_ps(
          acc, _mm512_mul_ps(_mm512_set1_ps(w[j]),
                             _mm512_loadu_ps(rows + j * dk + c)));
    _mm512_storeu_ps(out + c, acc);
  }
  if (c < dk) {
    const __mmask16 edge =
        static_cast<__mmask16>((1u << (dk - c)) - 1u);
    __m512 acc = _mm512_maskz_loadu_ps(edge, out + c);
    for (std::size_t j = 0; j < t; ++j)
      acc = _mm512_add_ps(
          acc, _mm512_mul_ps(_mm512_set1_ps(w[j]),
                             _mm512_maskz_loadu_ps(edge, rows + j * dk + c)));
    _mm512_mask_storeu_ps(out + c, edge, acc);
  }
}

void gemm_i8_avx512(const std::int8_t* a, const std::int8_t* bt,
                    std::size_t M, std::size_t N, std::size_t kp,
                    std::int32_t* c) {
  // kp is a multiple of kQuantKAlign (64): one full zmm of int8 per step.
  for (std::size_t i = 0; i < M; ++i) {
    const std::int8_t* arow = a + i * kp;
    for (std::size_t j = 0; j < N; ++j) {
      const std::int8_t* brow = bt + j * kp;
      __m512i acc = _mm512_setzero_si512();
      for (std::size_t k = 0; k < kp; k += 64) {
        const __m512i va = _mm512_loadu_si512(arow + k);
        const __m512i vb = _mm512_loadu_si512(brow + k);
        const __m512i a_lo =
            _mm512_cvtepi8_epi16(_mm512_castsi512_si256(va));
        const __m512i a_hi =
            _mm512_cvtepi8_epi16(_mm512_extracti64x4_epi64(va, 1));
        const __m512i b_lo =
            _mm512_cvtepi8_epi16(_mm512_castsi512_si256(vb));
        const __m512i b_hi =
            _mm512_cvtepi8_epi16(_mm512_extracti64x4_epi64(vb, 1));
        acc = _mm512_add_epi32(acc, _mm512_madd_epi16(a_lo, b_lo));
        acc = _mm512_add_epi32(acc, _mm512_madd_epi16(a_hi, b_hi));
      }
      c[i * N + j] = _mm512_reduce_add_epi32(acc);
    }
  }
}

}  // namespace

extern const KernelTable kAvx512Table;
const KernelTable kAvx512Table = {
    "avx512",
    gemm_rows_avx512,
    weighted_sum_avx512,
    weighted_sum_acc_avx512,
    gemm_i8_avx512,
};

}  // namespace netfm::nn::kernels
