// Context-independent embeddings via the GloVe objective (Pennington et
// al., 2014), trained on token co-occurrence counts. This is the
// "GloVe-initialized GRU" baseline of experiment E1: embeddings carry
// global co-occurrence information but — unlike the transformer — the same
// vector regardless of context.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/rng.h"

namespace netfm::nn {

/// Symmetric windowed co-occurrence counts over token-id sequences.
class CooccurrenceCounts {
 public:
  explicit CooccurrenceCounts(std::size_t vocab_size)
      : vocab_(vocab_size) {}

  /// Adds counts from one sequence with the given window radius; pairs are
  /// weighted 1/distance like the original GloVe.
  void add_sequence(std::span<const int> ids, std::size_t window = 4);

  std::size_t vocab_size() const noexcept { return vocab_; }
  const std::unordered_map<std::uint64_t, double>& pairs() const noexcept {
    return counts_;
  }

  static std::uint64_t key(std::uint32_t i, std::uint32_t j) noexcept {
    return (static_cast<std::uint64_t>(i) << 32) | j;
  }

 private:
  std::size_t vocab_;
  std::unordered_map<std::uint64_t, double> counts_;
};

struct GloveConfig {
  std::size_t dim = 32;
  std::size_t epochs = 15;
  float lr = 0.05f;         // AdaGrad initial step
  float x_max = 100.0f;     // weighting cutoff
  float alpha = 0.75f;      // weighting exponent
  std::uint64_t seed = 7;
};

/// Trains GloVe vectors; returns row-major [vocab, dim] (word + context
/// vectors summed, the standard choice).
std::vector<float> train_glove(const CooccurrenceCounts& counts,
                               const GloveConfig& config);

}  // namespace netfm::nn
