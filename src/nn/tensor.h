// Dense float tensor with reverse-mode automatic differentiation.
//
// Design: define-by-run tape. Tensor is a cheap handle onto a shared node;
// every op allocates a fresh node whose `backward` closure accumulates
// gradients into its parents. `backward()` on a scalar loss topologically
// sorts the graph and runs the closures in reverse.
//
// Performance: matmul runs as a blocked/packed GEMM whose row-blocks are
// dispatched onto the shared ThreadPool (see common/threadpool.h), and the
// O(n) op loops go through parallel_for above a size threshold. Kernels
// are written so results are bit-identical at every thread count (each
// output element is reduced in a fixed order by exactly one chunk).
//
// Shapes are row-major, rank 1..3. Rank-3 tensors are treated as batched
// matrices by matmul (leading dim is the batch).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"

namespace netfm::nn {

using Shape = std::vector<std::size_t>;

namespace detail {

/// Allocator whose resize() default-initializes floats (i.e. leaves them
/// uninitialized) instead of zero-filling. Ops that overwrite every output
/// element (matmul, unary, copies) use it to skip the memset; ops that
/// accumulate still zero explicitly via assign().
template <typename T>
struct UninitAllocator : std::allocator<T> {
  template <typename U>
  struct rebind {
    using other = UninitAllocator<U>;
  };
  template <typename U, typename... Args>
  void construct(U* p, Args&&... args) {
    if constexpr (sizeof...(Args) == 0)
      ::new (static_cast<void*>(p)) U;
    else
      ::new (static_cast<void*>(p)) U(std::forward<Args>(args)...);
  }
};

}  // namespace detail

/// Contiguous float storage for tensor values/gradients.
using FloatBuffer = std::vector<float, detail::UninitAllocator<float>>;

/// Number of elements in a shape.
std::size_t numel(const Shape& shape) noexcept;

/// "\[2, 3, 4\]" for error messages.
std::string shape_str(const Shape& shape);

/// Shared tensor node: storage + gradient + autograd links.
struct TensorNode {
  FloatBuffer value;
  FloatBuffer grad;  // allocated lazily; same length as value
  Shape shape;
  bool requires_grad = false;
  /// Value buffer came from the thread Workspace (inference fast path);
  /// the destructor returns it for reuse instead of freeing it.
  bool pooled = false;
  std::vector<std::shared_ptr<TensorNode>> parents;
  std::function<void(TensorNode&)> backward;  // reads this->grad, fills parents

  ~TensorNode();
  void ensure_grad();
};

// ---- Inference (no-grad) execution mode ----
//
// While a guard is active on a thread, every op on that thread skips the
// autograd machinery entirely: no parent links, no backward closures, and
// `requires_grad` is forced false on results — a forward pass builds no
// graph and holds no history. Output buffers are drawn from the thread's
// Workspace (see workspace.h) instead of the heap. Forward arithmetic is
// unchanged, so results are bit-identical to the recording route.

/// True when the calling thread is inside an InferenceGuard.
bool inference_mode() noexcept;

/// RAII no-grad gate. Nestable; restores the previous state on exit.
class InferenceGuard {
 public:
  InferenceGuard() noexcept;
  ~InferenceGuard();
  InferenceGuard(const InferenceGuard&) = delete;
  InferenceGuard& operator=(const InferenceGuard&) = delete;

 private:
  bool previous_;
};

/// Value-semantic handle to a tensor node.
class Tensor {
 public:
  Tensor() = default;

  /// Uninitialized (zero) tensor of the given shape.
  explicit Tensor(Shape shape, bool requires_grad = false);

  /// Tensor with uninitialized contents; the buffer comes from the thread
  /// Workspace while inference mode is active. For kernels that overwrite
  /// every element (the incremental-attention path).
  static Tensor empty(Shape shape);

  /// Tensor with explicit contents (row-major).
  Tensor(Shape shape, std::vector<float> values, bool requires_grad = false);

  /// Scalar convenience.
  static Tensor scalar(float v);

  /// All zeros / ones / constant.
  static Tensor zeros(Shape shape);
  static Tensor full(Shape shape, float v);

  /// Gaussian init with the given stddev (Xavier callers pass their own).
  static Tensor randn(Shape shape, Rng& rng, float stddev = 1.0f,
                      bool requires_grad = true);

  bool defined() const noexcept { return node_ != nullptr; }
  const Shape& shape() const;
  std::size_t size() const;  // total elements
  std::size_t dim(std::size_t i) const;
  std::size_t rank() const;
  bool requires_grad() const;
  void set_requires_grad(bool v);

  std::span<float> data();
  std::span<const float> data() const;
  std::span<float> grad();
  std::span<const float> grad() const;

  float item() const;  // requires size() == 1

  /// Clears gradient to zero (keeps allocation).
  void zero_grad();

  /// Runs reverse-mode autodiff from this scalar (size()==1) tensor.
  void backward();

  /// Detached copy sharing no graph history (same storage copy).
  Tensor detach() const;

  std::shared_ptr<TensorNode> node() const { return node_; }
  explicit Tensor(std::shared_ptr<TensorNode> node) : node_(std::move(node)) {}

 private:
  std::shared_ptr<TensorNode> node_;
};

// ---- Operations (all differentiable unless noted) ----

/// Matrix product. 2D x 2D -> 2D; 3D x 3D -> 3D with shared batch dim;
/// 3D x 2D -> 3D (weight shared across the batch).
/// Runs as a blocked, B-packed, thread-parallel kernel; results match
/// matmul_reference bit-for-bit at every thread count.
Tensor matmul(const Tensor& a, const Tensor& b);

/// Naive triple-loop matmul with the same shape rules as matmul(). No
/// autograd. Kept as the correctness oracle for the blocked kernel (tests)
/// and the baseline for the kernel benchmarks.
Tensor matmul_reference(const Tensor& a, const Tensor& b);

/// Elementwise add; `b` may also be a vector broadcast over the last dim.
Tensor add(const Tensor& a, const Tensor& b);
/// a - b, same broadcasting as add.
Tensor sub(const Tensor& a, const Tensor& b);
/// Elementwise product (exact same shape).
Tensor mul(const Tensor& a, const Tensor& b);
/// Scale by a constant.
Tensor scale(const Tensor& a, float s);

Tensor relu(const Tensor& a);
Tensor gelu(const Tensor& a);
Tensor tanh_op(const Tensor& a);
Tensor sigmoid(const Tensor& a);

/// Softmax over the last dimension.
Tensor softmax(const Tensor& a);

/// Fused scale -> masked_fill -> softmax over the last dimension: the
/// attention-score pipeline collapsed into one pass (one output buffer
/// instead of three, one sweep instead of three). Element-for-element it
/// computes exactly what the composed ops compute, so results are
/// bit-identical to that route. Inference-only: no backward is defined, so
/// `a` must not require grad (use the composed ops when training).
Tensor attention_softmax(const Tensor& a,
                         std::shared_ptr<const std::vector<float>> mask,
                         float scale, float mask_value);

/// Fused attention-probability kernel: q [BH, T, dk] x k [BH, T, dk] ->
/// softmax(mask(scale(q k^T))) [BH, T, T] with no intermediate score
/// tensors. Each lane's scores run through the dispatched backend GEMM
/// against a strided (non-copied) view of k^T, reducing over dk in the
/// same serial order the batched matmul uses per output element, followed
/// by the exact attention_softmax row loop — so the result is
/// bit-identical to matmul(q, transpose(k)) -> scale -> masked_fill ->
/// softmax on every backend. The mask has one float per score (BH*T*T) or
/// per broadcastable suffix of it. Inference-only: no backward is defined,
/// so inputs must not require grad.
Tensor attention_scores(const Tensor& q, const Tensor& k,
                        std::shared_ptr<const std::vector<float>> mask,
                        float scale, float mask_value);

/// Fused attention-context kernel: attn [BH, T, T] x v [BH, T, dk] ->
/// [BH, T, dk], one dispatched backend GEMM per lane writing straight into
/// the output (no per-lane tensor views or graph nodes). Per output
/// element it reduces over the T keys in ascending order — the batched
/// matmul's serial order — so the result is bit-identical to
/// matmul(attn, v) on every backend. Inference-only: no backward is
/// defined, so inputs must not require grad.
Tensor attention_apply(const Tensor& attn, const Tensor& v);

/// Log-softmax over the last dimension (numerically stable).
Tensor log_softmax(const Tensor& a);

/// Layer norm over the last dimension with learned gain/bias (vectors of
/// length last-dim).
Tensor layer_norm(const Tensor& a, const Tensor& gain, const Tensor& bias,
                  float eps = 1e-5f);

/// Embedding lookup: ids (len N) into rows of weight [V, D] -> [N, D].
Tensor embedding(const Tensor& weight, std::span<const int> ids);

/// Dropout with probability p (identity when p<=0 or !train).
Tensor dropout(const Tensor& a, float p, bool train, Rng& rng);

/// Swap the last two dims (2D or 3D).
Tensor transpose(const Tensor& a);

/// View with the same element count.
Tensor reshape(const Tensor& a, Shape shape);

/// Rows [begin, end) of a 2D tensor.
Tensor slice_rows(const Tensor& a, std::size_t begin, std::size_t end);

/// Concatenate 2D tensors along dim 0.
Tensor concat_rows(const std::vector<Tensor>& parts);

/// Mean over all elements -> scalar.
Tensor mean(const Tensor& a);

/// Sum over all elements -> scalar.
Tensor sum(const Tensor& a);

/// Mean of rows of a 2D tensor -> [D].
Tensor mean_rows(const Tensor& a);

/// General differentiable gather: out element i = a element map[i].
/// `map` indices must be < a.size(); repeated indices accumulate gradient.
/// This is the primitive behind head split/merge permutations in attention.
Tensor remap(const Tensor& a, Shape out_shape,
             std::shared_ptr<const std::vector<std::size_t>> map);

/// Adds `mask_value` where mask==0. `mask` is not differentiated.
/// Shapes: a [.., N], mask length N (broadcast) or same numel as `a`.
Tensor masked_fill(const Tensor& a, std::span<const float> mask,
                   float mask_value);

/// As above, but shares ownership of the mask instead of copying it —
/// callers that apply one mask across many layers (attention) build it
/// once and pass the same pointer every time.
Tensor masked_fill(const Tensor& a,
                   std::shared_ptr<const std::vector<float>> mask,
                   float mask_value);

/// Cross-entropy between logits [N, C] and integer targets (len N).
/// Targets < 0 are ignored (masked LM convention). Returns scalar mean.
Tensor cross_entropy(const Tensor& logits, std::span<const int> targets);

/// Mean squared error between predictions [N] (or [N,1]) and targets.
Tensor mse_loss(const Tensor& pred, std::span<const float> targets);

}  // namespace netfm::nn
