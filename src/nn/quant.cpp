#include "nn/quant.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "common/fault.h"
#include "common/metrics.h"
#include "common/threadpool.h"
#include "nn/kernels/kernels.h"
#include "nn/workspace.h"

namespace netfm::nn::quant {
namespace {

std::atomic<int> g_enabled{-1};  // -1 = read NETFM_QUANT on first query
std::atomic<std::uint64_t> g_epoch{1};

/// Work below this many scalar ops stays serial (same spirit as the GEMM
/// parallel cutoff in tensor.cpp).
constexpr std::size_t kParallelCutoff = std::size_t{1} << 15;

std::int8_t quantize_value(float v, float scale) {
  const long q = std::lrintf(v / scale);
  return static_cast<std::int8_t>(std::clamp(q, -127L, 127L));
}

/// (Re)packs W into per-output-channel int8 panels. Caller holds cache.mu.
void repack(PackedWeights& c, const float* w, std::size_t K, std::size_t N,
            std::size_t rs, std::size_t cs) {
  const std::uint64_t epoch = weight_epoch();  // read before the weights
  c.K = K;
  c.N = N;
  c.kp = (K + kernels::kQuantKAlign - 1) / kernels::kQuantKAlign *
         kernels::kQuantKAlign;
  c.panels.assign(N * c.kp, 0);
  c.scales.assign(N, 0.0f);
  const auto pack_cols = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t j = lo; j < hi; ++j) {
      float maxabs = 0.0f;
      for (std::size_t k = 0; k < K; ++k)
        maxabs = std::max(maxabs, std::fabs(w[k * rs + j * cs]));
      if (maxabs == 0.0f) continue;  // scale 0, panel stays zero
      const float scale = maxabs / 127.0f;
      c.scales[j] = scale;
      std::int8_t* dst = c.panels.data() + j * c.kp;
      for (std::size_t k = 0; k < K; ++k)
        dst[k] = quantize_value(w[k * rs + j * cs], scale);
    }
  };
  if (N * K >= kParallelCutoff) {
    const std::size_t grain =
        std::max<std::size_t>(1, kParallelCutoff / std::max<std::size_t>(1, K));
    ThreadPool::global().parallel_for(0, N, grain, pack_cols);
  } else {
    pack_cols(0, N);
  }
  c.epoch = epoch;
  static const auto repacks = metrics::counter("nn.quant.repack");
  repacks.add(1);
}

/// Validates the cache against the current weight epoch, repacking when
/// stale. Returns with the panels/scales current for this epoch.
void ensure(PackedWeights& c, const float* w, std::size_t K, std::size_t N,
            std::size_t rs, std::size_t cs) {
  const std::lock_guard<std::mutex> lock(*c.mu);
  if (c.epoch != weight_epoch() || c.K != K || c.N != N)
    repack(c, w, K, N, rs, cs);
}

}  // namespace

bool enabled() noexcept {
  int v = g_enabled.load(std::memory_order_relaxed);
  if (v < 0) {
    const char* env = std::getenv("NETFM_QUANT");
    v = (env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0'))
            ? 1
            : 0;
    g_enabled.store(v, std::memory_order_relaxed);
  }
  return v == 1;
}

void set_enabled(bool on) noexcept {
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

std::uint64_t weight_epoch() noexcept {
  return g_epoch.load(std::memory_order_acquire);
}

void bump_weight_epoch() noexcept {
  g_epoch.fetch_add(1, std::memory_order_release);
}

void prepack(const float* w, std::size_t K, std::size_t N, std::size_t rs,
             std::size_t cs, PackedWeights& cache) {
  if (!enabled() || K < kMinK) return;
  ensure(cache, w, K, N, rs, cs);
}

Tensor linear(const Tensor& x, const float* w, std::size_t K, std::size_t N,
              std::size_t rs, std::size_t cs, PackedWeights& cache) {
  if (!enabled() || !inference_mode()) return {};
  static const auto fallback_fault = fault::point("nn.quant.fallback");
  if (K < kMinK || fallback_fault.fire()) {
    static const auto fallbacks = metrics::counter("nn.quant.fallback");
    fallbacks.add(1);
    return {};
  }
  if (x.rank() == 0 || x.dim(x.rank() - 1) != K)
    throw std::invalid_argument("quant::linear: x last dim must equal K");

  ensure(cache, w, K, N, rs, cs);
  const std::size_t M = x.size() / K;
  const std::size_t kp = cache.kp;
  if (M == 0 || N == 0) return {};

  // Carve the int8 activation rows, per-row scales, and int32 accumulators
  // out of float workspace scratch (sizes rounded up to whole floats).
  // Scratch lives until the enclosing forward's reset_scratch, well past
  // this call.
  Workspace& ws = Workspace::current();
  auto* aq = reinterpret_cast<std::int8_t*>(ws.scratch((M * kp + 3) / 4).data());
  float* sa = ws.scratch(M).data();
  auto* acc = reinterpret_cast<std::int32_t*>(ws.scratch(M * N).data());
  const float* xp = x.data().data();

  // Per-row symmetric activation quantization: scale = max|row| / 127.
  // Rows are independent, so chunking cannot change results.
  const auto quant_rows = [=](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const float* row = xp + i * K;
      float maxabs = 0.0f;
      for (std::size_t k = 0; k < K; ++k)
        maxabs = std::max(maxabs, std::fabs(row[k]));
      std::int8_t* dst = aq + i * kp;
      if (maxabs == 0.0f) {
        sa[i] = 0.0f;
        std::fill(dst, dst + kp, std::int8_t{0});
        continue;
      }
      const float scale = maxabs / 127.0f;
      sa[i] = scale;
      for (std::size_t k = 0; k < K; ++k) dst[k] = quantize_value(row[k], scale);
      std::fill(dst + K, dst + kp, std::int8_t{0});
    }
  };
  const bool parallel_rows = M * K >= kParallelCutoff;
  if (parallel_rows) {
    const std::size_t grain =
        std::max<std::size_t>(1, kParallelCutoff / std::max<std::size_t>(1, K));
    ThreadPool::global().parallel_for(0, M, grain, quant_rows);
  } else {
    quant_rows(0, M);
  }

  // Exact int32 GEMM on the dispatched backend. Integer adds commute
  // exactly, so splitting rows across the pool cannot change results.
  const auto gemm_i8 = kernels::table().gemm_i8;
  const std::int8_t* bt = cache.panels.data();
  const auto gemm_run = [=](std::size_t lo, std::size_t hi) {
    gemm_i8(aq + lo * kp, bt, hi - lo, N, kp, acc + lo * N);
  };
  if (M * N * kp >= kParallelCutoff && M > 1) {
    const std::size_t grain = std::max<std::size_t>(
        1, kParallelCutoff / std::max<std::size_t>(1, N * kp) + 1);
    ThreadPool::global().parallel_for(0, M, grain, gemm_run);
  } else {
    gemm_run(0, M);
  }

  // Dequantize: out = acc * scale_row * scale_col.
  Shape out_shape = x.shape();
  out_shape.back() = N;
  Tensor out = Tensor::empty(std::move(out_shape));
  float* op = out.data().data();
  const float* sb = cache.scales.data();
  const auto dequant_rows = [=](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const float si = sa[i];
      const std::int32_t* arow = acc + i * N;
      float* orow = op + i * N;
      for (std::size_t j = 0; j < N; ++j)
        orow[j] = static_cast<float>(arow[j]) * si * sb[j];
    }
  };
  if (M * N >= kParallelCutoff) {
    const std::size_t grain =
        std::max<std::size_t>(1, kParallelCutoff / std::max<std::size_t>(1, N));
    ThreadPool::global().parallel_for(0, M, grain, dequant_rows);
  } else {
    dequant_rows(0, M);
  }

  static const auto gemms = metrics::counter("nn.quant.gemm");
  gemms.add(1);
  return out;
}

}  // namespace netfm::nn::quant
