#include "nn/workspace.h"

#include <new>
#include <utility>

#include "common/fault.h"
#include "common/metrics.h"

namespace netfm::nn {

namespace {

/// The one gauge tracking resident workspace memory; every path that
/// changes what the workspace holds must re-set it (acquire, release,
/// clear) or the reading goes stale.
void update_gauge(std::size_t bytes) noexcept {
  static const auto g_bytes = metrics::gauge("infer.workspace_bytes", "byte");
  g_bytes.set(static_cast<double>(bytes));
}

}  // namespace

Workspace& Workspace::current() noexcept {
  thread_local Workspace ws;
  return ws;
}

FloatBuffer Workspace::acquire(std::size_t n) {
  static const auto f_oom = fault::point("nn.workspace.oom");
  if (f_oom.fire()) throw std::bad_alloc();

  FloatBuffer buf;
  // Exact-size match first (steady-state inference repeats the same
  // shapes); otherwise best-fit: the smallest free buffer whose capacity
  // already covers the request, so big blocks stay available for big
  // requests. Only if every free buffer is too small do we take the
  // largest and grow it — the minimal realloc delta.
  std::size_t best = free_.size();
  for (std::size_t i = free_.size(); i-- > 0;) {
    if (free_[i].size() == n) {
      best = i;
      break;
    }
    if (best == free_.size()) {
      best = i;
      continue;
    }
    const std::size_t cap = free_[i].capacity();
    const std::size_t best_cap = free_[best].capacity();
    const bool fits = cap >= n;
    const bool best_fits = best_cap >= n;
    if (fits != best_fits ? fits : (fits ? cap < best_cap : cap > best_cap))
      best = i;
  }
  if (best < free_.size()) {
    buf = std::move(free_[best]);
    free_[best] = std::move(free_.back());
    free_.pop_back();
    free_floats_ -= buf.capacity();
  }
  buf.resize(n);  // no zero-fill (UninitAllocator)

  update_gauge(bytes_held());
  return buf;
}

void Workspace::release(FloatBuffer&& buf) noexcept {
  if (buf.capacity() == 0) return;
  if (free_.size() >= kMaxFreeBuffers) return;  // drop: frees the heap block
  // The heap block held is capacity()-sized: acquire() may have resized the
  // buffer below the capacity it came back with, so counting size() would
  // leak the difference from the gauge.
  free_floats_ += buf.capacity();
  free_.push_back(std::move(buf));
  update_gauge(bytes_held());
}

std::span<float> Workspace::scratch(std::size_t n) {
  if (scratch_used_ == scratch_.size()) scratch_.emplace_back();
  FloatBuffer& slab = scratch_[scratch_used_++];
  if (slab.size() < n) {
    scratch_floats_ += n - slab.size();
    slab.resize(n);
  }
  return {slab.data(), n};
}

void Workspace::reset_scratch() noexcept { scratch_used_ = 0; }

std::size_t Workspace::bytes_held() const noexcept {
  return (free_floats_ + scratch_floats_) * sizeof(float);
}

void Workspace::clear() noexcept {
  free_.clear();
  free_floats_ = 0;
  scratch_.clear();
  scratch_used_ = 0;
  scratch_floats_ = 0;
  update_gauge(0);
}

}  // namespace netfm::nn
