#include "nn/workspace.h"

#include <new>
#include <utility>

#include "common/fault.h"
#include "common/metrics.h"

namespace netfm::nn {

Workspace& Workspace::current() noexcept {
  thread_local Workspace ws;
  return ws;
}

FloatBuffer Workspace::acquire(std::size_t n) {
  static const auto f_oom = fault::point("nn.workspace.oom");
  if (f_oom.fire()) throw std::bad_alloc();

  FloatBuffer buf;
  // Exact-size match first (steady-state inference repeats the same
  // shapes); otherwise take the largest free buffer so its capacity is
  // reused rather than a smaller one growing.
  std::size_t best = free_.size();
  for (std::size_t i = free_.size(); i-- > 0;) {
    if (free_[i].size() == n) {
      best = i;
      break;
    }
    if (best == free_.size() || free_[i].capacity() > free_[best].capacity())
      best = i;
  }
  if (best < free_.size()) {
    buf = std::move(free_[best]);
    free_[best] = std::move(free_.back());
    free_.pop_back();
    free_floats_ -= buf.size();
  }
  buf.resize(n);  // no zero-fill (UninitAllocator)

  static const auto g_bytes = metrics::gauge("infer.workspace_bytes", "byte");
  g_bytes.set(static_cast<double>(bytes_held()));
  return buf;
}

void Workspace::release(FloatBuffer&& buf) noexcept {
  if (buf.capacity() == 0) return;
  if (free_.size() >= kMaxFreeBuffers) return;  // drop: frees the heap block
  free_floats_ += buf.size();
  free_.push_back(std::move(buf));
}

std::span<float> Workspace::scratch(std::size_t n) {
  if (scratch_used_ == scratch_.size()) scratch_.emplace_back();
  FloatBuffer& slab = scratch_[scratch_used_++];
  if (slab.size() < n) {
    scratch_floats_ += n - slab.size();
    slab.resize(n);
  }
  return {slab.data(), n};
}

void Workspace::reset_scratch() noexcept { scratch_used_ = 0; }

std::size_t Workspace::bytes_held() const noexcept {
  return (free_floats_ + scratch_floats_) * sizeof(float);
}

void Workspace::clear() noexcept {
  free_.clear();
  free_floats_ = 0;
  scratch_.clear();
  scratch_used_ = 0;
  scratch_floats_ = 0;
}

}  // namespace netfm::nn
