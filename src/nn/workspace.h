// Per-thread tensor workspace for the inference fast path.
//
// While an InferenceGuard (see tensor.h) is active, every tensor op draws
// its output buffer from the calling thread's Workspace instead of the
// heap, and returns it when the tensor handle dies. Intermediate
// activations in a forward pass are born and die in LIFO-ish order, so
// after one warm-up pass the free list holds a buffer of every size the
// network needs and steady-state inference performs no allocation at all.
//
// Lifetime rules (see DESIGN.md "Inference architecture"):
//  - Buffers are recycled through the workspace of the thread that
//    *destroys* the tensor, which for the supported pattern (driver thread
//    builds ops, pool workers only fill buffers) is the thread that
//    acquired them. A tensor may safely outlive the InferenceGuard that
//    created it; its buffer is simply returned later.
//  - scratch() spans are bump-allocated and valid until reset_scratch(),
//    which every top-level forward calls on entry. Never hold a scratch
//    span across a forward boundary.
//  - The free list is capped (kMaxFreeBuffers); beyond that, released
//    buffers are freed to bound resident memory under shape churn.
#pragma once

#include <cstddef>
#include <span>

#include "nn/tensor.h"

namespace netfm::nn {

class Workspace {
 public:
  /// Free-list cap: releases beyond this many pooled buffers just free.
  static constexpr std::size_t kMaxFreeBuffers = 64;

  /// The calling thread's workspace (created on first use).
  static Workspace& current() noexcept;

  /// A buffer of exactly `n` floats, recycled when possible, contents
  /// uninitialized. Observes the `nn.workspace.oom` fault point (throws
  /// std::bad_alloc when it fires).
  FloatBuffer acquire(std::size_t n);

  /// Returns a buffer to the free list (or frees it past the cap).
  void release(FloatBuffer&& buf) noexcept;

  /// Bump-allocated scratch, valid until reset_scratch(). Contents
  /// uninitialized.
  std::span<float> scratch(std::size_t n);

  /// Invalidates all scratch() spans; keeps the backing capacity.
  void reset_scratch() noexcept;

  /// Floats currently parked in the free list + scratch capacity, in bytes
  /// (the `infer.workspace_bytes` gauge).
  std::size_t bytes_held() const noexcept;

  /// Frees everything (test hook).
  void clear() noexcept;

 private:
  std::vector<FloatBuffer> free_;
  std::size_t free_floats_ = 0;
  std::vector<FloatBuffer> scratch_;  // one slab per live scratch() call
  std::size_t scratch_used_ = 0;      // live slabs since reset_scratch()
  std::size_t scratch_floats_ = 0;
};

}  // namespace netfm::nn
