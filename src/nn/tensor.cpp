#include "nn/tensor.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <unordered_set>

#include "common/metrics.h"
#include "common/threadpool.h"
#include "nn/kernels/kernels.h"
#include "nn/workspace.h"

namespace netfm::nn {
namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("netfm::nn: " + what);
}

void check(bool ok, const std::string& what) {
  if (!ok) fail(what);
}

/// Thread-local no-grad flag behind inference_mode()/InferenceGuard.
thread_local bool t_inference_mode = false;

/// Whether make_node zero-fills the output buffer. Ops that write every
/// element (matmul, unary, copies) skip the fill; ops that accumulate into
/// the output (mean_rows) keep it.
enum class Init { kZero, kUninit };

std::shared_ptr<TensorNode> make_node(
    Shape shape, std::vector<std::shared_ptr<TensorNode>> parents,
    Init init = Init::kZero) {
  auto node = std::make_shared<TensorNode>();
  node->shape = std::move(shape);
  const std::size_t n = numel(node->shape);
  if (t_inference_mode) {
    // Fast path: recycled buffer, no parent links, no grad propagation —
    // the graph is never built, and intermediates recycle as soon as the
    // last Tensor handle drops.
    node->value = Workspace::current().acquire(n);
    node->pooled = true;
    if (init == Init::kZero)
      std::fill(node->value.begin(), node->value.end(), 0.0f);
    return node;
  }
  if (init == Init::kZero)
    node->value.assign(n, 0.0f);
  else
    node->value.resize(n);  // default-init: no zero-fill (UninitAllocator)
  node->parents = std::move(parents);
  for (const auto& p : node->parents)
    if (p && p->requires_grad) node->requires_grad = true;
  return node;
}

/// Installs a backward closure only when the node actually participates in
/// a graph (some parent requires grad). Inference-mode and frozen-input
/// nodes skip the std::function allocation entirely; backward() never
/// visits them (it gates on requires_grad).
template <typename Fn>
void set_backward(const std::shared_ptr<TensorNode>& node, Fn&& fn) {
  if (node->requires_grad) node->backward = std::forward<Fn>(fn);
}

// ---- parallel loop helpers ----------------------------------------------
//
// Every helper partitions work by output ownership: a given output element
// (or row) is written by exactly one chunk, and each chunk reduces in a
// fixed serial order, so results are independent of chunking and therefore
// of the thread count.

/// Elementwise grain: below this many elements a loop stays serial; above,
/// chunks of this size go to the pool.
constexpr std::size_t kElemGrain = std::size_t{1} << 13;

template <typename Fn>
void parallel_elems(std::size_t n, Fn&& fn) {
  ThreadPool::global().parallel_for(0, n, kElemGrain, std::forward<Fn>(fn));
}

/// Row-wise grain targeting ~kElemGrain touched elements per chunk.
template <typename Fn>
void parallel_rows(std::size_t rows, std::size_t cols, Fn&& fn) {
  const std::size_t grain =
      std::max<std::size_t>(1, kElemGrain / std::max<std::size_t>(1, cols));
  ThreadPool::global().parallel_for(0, rows, grain, std::forward<Fn>(fn));
}

// ---- blocked GEMM -------------------------------------------------------
//
// C (M x N, row-major) = (or +=) op(A) * op(B), where op(A)/op(B) are
// strided views so transposed operands cost nothing. op(B) is packed once
// per call into NR-wide column panels (contiguous, zero-padded), then
// MR x NR register-blocked micro-tiles stream over the packed panels.
// The reduction over K is not split, so each output element accumulates in
// the same order as the naive triple loop — blocked and reference kernels
// agree bit-for-bit.
//
// The micro-kernel itself lives in nn/kernels/ behind a runtime-dispatched
// backend table (scalar oracle, AVX2, AVX-512, NEON); every backend keeps
// the same per-element reduction order, so dispatch never changes results.

using kernels::MatRef;
using kernels::kMR;
using kernels::kNR;

/// Multiply-adds below which a GEMM is not worth fanning out.
constexpr std::size_t kGemmParallelCutoff = std::size_t{1} << 15;

/// Packs op(B) (K x N) into ceil(N/NR) panels of K x NR, zero-padded on the
/// right edge, laid out panel-major so the micro-kernel streams linearly.
void pack_b(MatRef b, std::size_t K, std::size_t N, float* packed) {
  for (std::size_t jp = 0; jp < N; jp += kNR) {
    const std::size_t nr = std::min(kNR, N - jp);
    float* dst = packed + jp * K;
    for (std::size_t kk = 0; kk < K; ++kk) {
      const float* src = b.p + kk * b.rs + jp * b.cs;
      std::size_t c = 0;
      for (; c < nr; ++c) dst[c] = src[c * b.cs];
      for (; c < kNR; ++c) dst[c] = 0.0f;
      dst += kNR;
    }
  }
}

/// Per-thread packed-B scratch. Only the thread that packs reads/writes its
/// own buffer until it hands the pointer to pool workers for the duration
/// of one (blocking) parallel_for, so there is no aliasing across calls.
thread_local std::vector<float> t_pack_scratch;

/// Full GEMM: packs op(B), then runs row-blocks serially or on the pool.
/// Chunk grain is derived from the matrix sizes only (never the thread
/// count), and each chunk owns whole output rows — results are identical
/// for every pool size.
template <bool Accumulate>
void gemm(std::size_t M, std::size_t N, std::size_t K, MatRef a, MatRef b,
          float* c, bool allow_parallel) {
  if (M == 0 || N == 0 || K == 0) return;
  std::vector<float>& scratch = t_pack_scratch;
  const std::size_t packed_size = (N + kNR - 1) / kNR * kNR * K;
  if (scratch.size() < packed_size) scratch.resize(packed_size);
  float* packed = scratch.data();
  pack_b(b, K, N, packed);
  const auto gemm_rows = kernels::table().gemm_rows;
  const auto run = [=](std::size_t lo, std::size_t hi) {
    gemm_rows(a, packed, K, N, c, lo, hi, Accumulate);
  };
  if (!allow_parallel || M * N * K < kGemmParallelCutoff) {
    run(0, M);
    return;
  }
  // At least one micro-tile of rows and ~cutoff flops per chunk.
  const std::size_t min_rows =
      kGemmParallelCutoff / std::max<std::size_t>(1, N * K) + 1;
  const std::size_t grain = (std::max(min_rows, kMR) + kMR - 1) / kMR * kMR;
  ThreadPool::global().parallel_for(0, M, grain, run);
}

/// Interprets a tensor as a batch of matrices: rank 2 = batch 1.
struct MatView {
  std::size_t batch, rows, cols;
};

MatView as_matrices(const Shape& s, const char* name) {
  if (s.size() == 2) return {1, s[0], s[1]};
  if (s.size() == 3) return {s[0], s[1], s[2]};
  fail(std::string(name) + ": expected rank 2 or 3, got " + shape_str(s));
}

}  // namespace

std::size_t numel(const Shape& shape) noexcept {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return n;
}

std::string shape_str(const Shape& shape) {
  std::string out = "[";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) out += ", ";
    out += std::to_string(shape[i]);
  }
  return out + "]";
}

TensorNode::~TensorNode() {
  // Pooled buffers recycle through the workspace of the destroying thread
  // (the driver thread under the supported usage pattern; see workspace.h).
  if (pooled) Workspace::current().release(std::move(value));
}

void TensorNode::ensure_grad() {
  if (grad.size() != value.size()) grad.assign(value.size(), 0.0f);
}

bool inference_mode() noexcept { return t_inference_mode; }

InferenceGuard::InferenceGuard() noexcept : previous_(t_inference_mode) {
  t_inference_mode = true;
}

InferenceGuard::~InferenceGuard() { t_inference_mode = previous_; }

Tensor::Tensor(Shape shape, bool requires_grad) {
  node_ = std::make_shared<TensorNode>();
  node_->shape = std::move(shape);
  node_->value.assign(numel(node_->shape), 0.0f);
  node_->requires_grad = requires_grad;
}

Tensor::Tensor(Shape shape, std::vector<float> values, bool requires_grad) {
  check(numel(shape) == values.size(), "Tensor: values/shape mismatch");
  node_ = std::make_shared<TensorNode>();
  node_->shape = std::move(shape);
  node_->value.assign(values.begin(), values.end());
  node_->requires_grad = requires_grad;
}

Tensor Tensor::scalar(float v) {
  return Tensor(Shape{1}, std::vector<float>{v});
}

Tensor Tensor::empty(Shape shape) {
  return Tensor(make_node(std::move(shape), {}, Init::kUninit));
}

Tensor Tensor::zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::full(Shape shape, float v) {
  Tensor t(std::move(shape));
  std::fill(t.data().begin(), t.data().end(), v);
  return t;
}

Tensor Tensor::randn(Shape shape, Rng& rng, float stddev, bool requires_grad) {
  Tensor t(std::move(shape), requires_grad);
  for (float& v : t.data())
    v = static_cast<float>(rng.normal(0.0, stddev));
  return t;
}

const Shape& Tensor::shape() const {
  check(defined(), "shape() on undefined tensor");
  return node_->shape;
}
std::size_t Tensor::size() const { return numel(shape()); }
std::size_t Tensor::dim(std::size_t i) const { return shape().at(i); }
std::size_t Tensor::rank() const { return shape().size(); }
bool Tensor::requires_grad() const { return defined() && node_->requires_grad; }
void Tensor::set_requires_grad(bool v) {
  check(defined(), "set_requires_grad on undefined tensor");
  node_->requires_grad = v;
}

std::span<float> Tensor::data() {
  check(defined(), "data() on undefined tensor");
  return node_->value;
}
std::span<const float> Tensor::data() const {
  check(defined(), "data() on undefined tensor");
  return node_->value;
}
std::span<float> Tensor::grad() {
  check(defined(), "grad() on undefined tensor");
  node_->ensure_grad();
  return node_->grad;
}
std::span<const float> Tensor::grad() const {
  check(defined(), "grad() on undefined tensor");
  const_cast<TensorNode*>(node_.get())->ensure_grad();
  return node_->grad;
}

float Tensor::item() const {
  check(size() == 1, "item() requires a scalar tensor");
  return data()[0];
}

void Tensor::zero_grad() {
  if (!defined()) return;
  std::fill(node_->grad.begin(), node_->grad.end(), 0.0f);
}

void Tensor::backward() {
  check(defined() && size() == 1, "backward() requires a scalar loss");
  // Topological order via iterative post-order DFS.
  std::vector<TensorNode*> order;
  std::unordered_set<TensorNode*> seen;
  std::vector<std::pair<TensorNode*, std::size_t>> stack;
  stack.emplace_back(node_.get(), 0);
  seen.insert(node_.get());
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->parents.size()) {
      TensorNode* child = node->parents[next_child++].get();
      if (child && !seen.count(child)) {
        seen.insert(child);
        stack.emplace_back(child, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
  node_->ensure_grad();
  node_->grad[0] = 1.0f;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    TensorNode* node = *it;
    if (node->backward && node->requires_grad) {
      for (const auto& p : node->parents)
        if (p && p->requires_grad) p->ensure_grad();
      node->ensure_grad();
      node->backward(*node);
    }
  }
}

Tensor Tensor::detach() const {
  check(defined(), "detach() on undefined tensor");
  auto node = std::make_shared<TensorNode>();
  node->shape = node_->shape;
  node->value = node_->value;
  node->requires_grad = false;
  return Tensor(std::move(node));
}

// ---- ops ----

namespace {

/// Shape validation shared by matmul and matmul_reference.
struct MatmulDims {
  std::size_t batch, m, k, n;
  bool shared_rhs;
  Shape out_shape;
};

MatmulDims matmul_dims(const Tensor& a, const Tensor& b) {
  const MatView av = as_matrices(a.shape(), "matmul lhs");
  const MatView bv = as_matrices(b.shape(), "matmul rhs");
  const bool shared_rhs = a.rank() == 3 && b.rank() == 2;
  check(av.cols == bv.rows, "matmul: inner dims differ: " +
                                shape_str(a.shape()) + " x " +
                                shape_str(b.shape()));
  check(shared_rhs || av.batch == bv.batch, "matmul: batch mismatch");
  Shape out_shape = a.rank() == 3 ? Shape{av.batch, av.rows, bv.cols}
                                  : Shape{av.rows, bv.cols};
  return {av.batch, av.rows, av.cols, bv.cols, shared_rhs,
          std::move(out_shape)};
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  MatmulDims d = matmul_dims(a, b);
  // One counter bump + (when collecting) two clock reads per GEMM call —
  // nothing per element, so the kernel stays within noise of PR 1.
  static const auto c_calls = metrics::counter("nn.matmul.calls");
  static const auto c_flops = metrics::counter("nn.matmul.flops", "flop");
  static const auto h_time = metrics::histogram("nn.matmul.ns");
  c_calls.add();
  c_flops.add(2 * d.batch * d.m * d.k * d.n);
  metrics::ScopedTimer timer(h_time);
  auto node =
      make_node(std::move(d.out_shape), {a.node(), b.node()}, Init::kUninit);

  const float* ap = a.data().data();
  const float* bp = b.data().data();
  float* op = node->value.data();
  const std::size_t batch = d.batch, m = d.m, k = d.k, n = d.n;
  const bool shared_rhs = d.shared_rhs;
  // Below-cutoff batched products run inline (grain = whole range).
  const std::size_t batch_grain =
      batch * m * n * k >= kGemmParallelCutoff ? 1 : batch;
  if (shared_rhs || batch == 1) {
    // One GEMM over the collapsed (batch*m) row space: with a shared (or
    // single) RHS, the batch dim is just more rows of A and C.
    gemm<false>(batch * m, n, k, {ap, k, 1}, {bp, n, 1}, op,
                /*allow_parallel=*/true);
  } else {
    // Distinct RHS per batch entry (attention): fan out across the batch;
    // each lane packs and multiplies its own pair serially.
    ThreadPool::global().parallel_for(
        0, batch, batch_grain, [=](std::size_t lo, std::size_t hi) {
          for (std::size_t bi = lo; bi < hi; ++bi)
            gemm<false>(m, n, k, {ap + bi * m * k, k, 1},
                        {bp + bi * k * n, n, 1}, op + bi * m * n,
                        /*allow_parallel=*/false);
        });
  }

  set_backward(node, [m, k, n, batch, batch_grain, shared_rhs](
                       TensorNode& self) {
    static const auto c_bwd = metrics::counter("nn.matmul.backward.calls");
    static const auto h_bwd = metrics::histogram("nn.matmul.backward.ns");
    c_bwd.add();
    metrics::ScopedTimer bwd_timer(h_bwd);
    TensorNode& A = *self.parents[0];
    TensorNode& B = *self.parents[1];
    const float* gp = self.grad.data();
    const float* ap = A.value.data();
    const float* bp = B.value.data();
    if (A.requires_grad) {
      float* ga = A.grad.data();
      if (shared_rhs || batch == 1) {
        // dA (batch*m x k) += dC (batch*m x n) · Bᵀ (n x k)
        gemm<true>(batch * m, k, n, {gp, n, 1}, {bp, 1, n}, ga, true);
      } else {
        ThreadPool::global().parallel_for(
            0, batch, batch_grain, [=](std::size_t lo, std::size_t hi) {
              for (std::size_t bi = lo; bi < hi; ++bi)
                gemm<true>(m, k, n, {gp + bi * m * n, n, 1},
                           {bp + bi * k * n, 1, n}, ga + bi * m * k, false);
            });
      }
    }
    if (B.requires_grad) {
      float* gb = B.grad.data();
      if (shared_rhs || batch == 1) {
        // dB (k x n) += Aᵀ (k x batch*m) · dC (batch*m x n); for shared
        // RHS the batch reduction is exactly the collapsed K dimension.
        gemm<true>(k, n, batch * m, {ap, 1, k}, {gp, n, 1}, gb, true);
      } else {
        ThreadPool::global().parallel_for(
            0, batch, batch_grain, [=](std::size_t lo, std::size_t hi) {
              for (std::size_t bi = lo; bi < hi; ++bi)
                gemm<true>(k, n, m, {ap + bi * m * k, 1, k},
                           {gp + bi * m * n, n, 1}, gb + bi * k * n, false);
            });
      }
    }
  });
  return Tensor(node);
}

Tensor matmul_reference(const Tensor& a, const Tensor& b) {
  MatmulDims d = matmul_dims(a, b);
  Tensor out(std::move(d.out_shape));
  const float* ap = a.data().data();
  const float* bp = b.data().data();
  float* op = out.data().data();
  for (std::size_t batch_i = 0; batch_i < d.batch; ++batch_i) {
    const float* abase = ap + batch_i * d.m * d.k;
    const float* bbase = d.shared_rhs ? bp : bp + batch_i * d.k * d.n;
    float* obase = op + batch_i * d.m * d.n;
    for (std::size_t i = 0; i < d.m; ++i) {
      float* orow = obase + i * d.n;
      for (std::size_t kk = 0; kk < d.k; ++kk) {
        const float av_ik = abase[i * d.k + kk];
        const float* brow = bbase + kk * d.n;
        for (std::size_t j = 0; j < d.n; ++j) orow[j] += av_ik * brow[j];
      }
    }
  }
  return out;
}

namespace {

/// add/sub with optional last-dim broadcast of b.
Tensor add_like(const Tensor& a, const Tensor& b, float sign) {
  const std::size_t an = a.size();
  const std::size_t bn = b.size();
  const std::size_t last = a.shape().back();
  const bool broadcast = bn != an;
  check(!broadcast || bn == last,
        "add: rhs must match shape or last dim, got " + shape_str(a.shape()) +
            " vs " + shape_str(b.shape()));

  auto node = make_node(a.shape(), {a.node(), b.node()}, Init::kUninit);
  const float* ap = a.data().data();
  const float* bp = b.data().data();
  float* op = node->value.data();
  if (broadcast) {
    parallel_elems(an, [=](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i)
        op[i] = ap[i] + sign * bp[i % last];
    });
  } else {
    parallel_elems(an, [=](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) op[i] = ap[i] + sign * bp[i];
    });
  }

  set_backward(node, [an, last, broadcast, sign](TensorNode& self) {
    TensorNode& A = *self.parents[0];
    TensorNode& B = *self.parents[1];
    const float* g = self.grad.data();
    if (A.requires_grad) {
      float* ga = A.grad.data();
      parallel_elems(an, [=](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) ga[i] += g[i];
      });
    }
    if (B.requires_grad) {
      if (broadcast) {
        // All rows reduce into `last` slots; stays serial so the
        // accumulation order is fixed (and race-free).
        for (std::size_t i = 0; i < an; ++i) B.grad[i % last] += sign * g[i];
      } else {
        float* gb = B.grad.data();
        parallel_elems(an, [=](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) gb[i] += sign * g[i];
        });
      }
    }
  });
  return Tensor(node);
}

/// Shared unary-elementwise builder.
template <typename F, typename DF>
Tensor unary(const Tensor& a, F f, DF df) {
  auto node = make_node(a.shape(), {a.node()}, Init::kUninit);
  const float* ap = a.data().data();
  float* op = node->value.data();
  const std::size_t n = a.size();
  parallel_elems(n, [=](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) op[i] = f(ap[i]);
  });
  set_backward(node, [n, df](TensorNode& self) {
    TensorNode& A = *self.parents[0];
    if (!A.requires_grad) return;
    float* ga = A.grad.data();
    const float* av = A.value.data();
    const float* g = self.grad.data();
    const float* y = self.value.data();
    parallel_elems(n, [=](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) ga[i] += g[i] * df(av[i], y[i]);
    });
  });
  return Tensor(node);
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) { return add_like(a, b, 1.0f); }
Tensor sub(const Tensor& a, const Tensor& b) { return add_like(a, b, -1.0f); }

Tensor mul(const Tensor& a, const Tensor& b) {
  check(a.size() == b.size(), "mul: shape mismatch");
  auto node = make_node(a.shape(), {a.node(), b.node()}, Init::kUninit);
  const std::size_t n = a.size();
  const float* ap = a.data().data();
  const float* bp = b.data().data();
  float* op = node->value.data();
  parallel_elems(n, [=](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) op[i] = ap[i] * bp[i];
  });
  set_backward(node, [n](TensorNode& self) {
    TensorNode& A = *self.parents[0];
    TensorNode& B = *self.parents[1];
    const bool need_a = A.requires_grad, need_b = B.requires_grad;
    const float* g = self.grad.data();
    const float* av = A.value.data();
    const float* bv = B.value.data();
    float* ga = need_a ? A.grad.data() : nullptr;
    float* gb = need_b ? B.grad.data() : nullptr;
    parallel_elems(n, [=](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        if (need_a) ga[i] += g[i] * bv[i];
        if (need_b) gb[i] += g[i] * av[i];
      }
    });
  });
  return Tensor(node);
}

Tensor scale(const Tensor& a, float s) {
  return unary(
      a, [s](float x) { return x * s; },
      [s](float, float) { return s; });
}

Tensor relu(const Tensor& a) {
  return unary(
      a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; });
}

Tensor gelu(const Tensor& a) {
  // tanh approximation of GELU (matches BERT).
  constexpr float kC = 0.7978845608f;  // sqrt(2/pi)
  return unary(
      a,
      [](float x) {
        const float inner = kC * (x + 0.044715f * x * x * x);
        return 0.5f * x * (1.0f + std::tanh(inner));
      },
      [](float x, float) {
        const float x3 = x * x * x;
        const float inner = kC * (x + 0.044715f * x3);
        const float t = std::tanh(inner);
        const float dinner = kC * (1.0f + 3.0f * 0.044715f * x * x);
        return 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * dinner;
      });
}

Tensor tanh_op(const Tensor& a) {
  return unary(
      a, [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; });
}

Tensor sigmoid(const Tensor& a) {
  return unary(
      a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float, float y) { return y * (1.0f - y); });
}

namespace {

/// Rows-of-last-dim iteration helper.
struct LastDim {
  std::size_t rows, cols;
};
LastDim last_dim(const Shape& s) {
  const std::size_t cols = s.back();
  return {numel(s) / cols, cols};
}

}  // namespace

Tensor softmax(const Tensor& a) {
  const auto [rows, cols] = last_dim(a.shape());
  auto node = make_node(a.shape(), {a.node()}, Init::kUninit);
  const float* ap = a.data().data();
  float* op = node->value.data();
  parallel_rows(rows, cols, [=, cols = cols](std::size_t lo, std::size_t hi) {
    for (std::size_t r = lo; r < hi; ++r) {
      const float* in = ap + r * cols;
      float* out = op + r * cols;
      float maxv = in[0];
      for (std::size_t c = 1; c < cols; ++c) maxv = std::max(maxv, in[c]);
      float total = 0.0f;
      for (std::size_t c = 0; c < cols; ++c) {
        out[c] = std::exp(in[c] - maxv);
        total += out[c];
      }
      for (std::size_t c = 0; c < cols; ++c) out[c] /= total;
    }
  });
  set_backward(node, [rows = rows, cols = cols](TensorNode& self) {
    TensorNode& A = *self.parents[0];
    if (!A.requires_grad) return;
    const float* yp = self.value.data();
    const float* gp = self.grad.data();
    float* gap = A.grad.data();
    parallel_rows(rows, cols, [=](std::size_t lo, std::size_t hi) {
      for (std::size_t r = lo; r < hi; ++r) {
        const float* y = yp + r * cols;
        const float* g = gp + r * cols;
        float dot = 0.0f;
        for (std::size_t c = 0; c < cols; ++c) dot += y[c] * g[c];
        float* ga = gap + r * cols;
        for (std::size_t c = 0; c < cols; ++c) ga[c] += y[c] * (g[c] - dot);
      }
    });
  });
  return Tensor(node);
}

Tensor attention_softmax(const Tensor& a,
                         std::shared_ptr<const std::vector<float>> mask,
                         float scale, float mask_value) {
  check(mask != nullptr, "attention_softmax: null mask");
  check(!a.requires_grad(),
        "attention_softmax: inference-only; use scale/masked_fill/softmax "
        "when gradients are needed");
  const std::size_t n = a.size();
  const std::size_t mn = mask->size();
  check(mn == n || (mn > 0 && n % mn == 0),
        "attention_softmax: mask length must divide tensor size");
  const auto [rows, cols] = last_dim(a.shape());
  auto node = make_node(a.shape(), {}, Init::kUninit);
  const float* ap = a.data().data();
  const float* mp = mask->data();
  float* op = node->value.data();
  // Single sweep per row: materialize the scaled+masked scores into the
  // output, then the exact softmax row loop. Element-for-element this is
  // the composed scale -> masked_fill -> softmax pipeline (same float ops
  // in the same order), so results are bit-identical to that route — it
  // just skips two intermediate buffers and two extra passes.
  parallel_rows(rows, cols, [=, cols = cols](std::size_t lo, std::size_t hi) {
    for (std::size_t r = lo; r < hi; ++r) {
      const float* in = ap + r * cols;
      float* out = op + r * cols;
      const std::size_t base = r * cols;
      for (std::size_t c = 0; c < cols; ++c)
        out[c] = mp[(base + c) % mn] != 0.0f ? in[c] * scale : mask_value;
      float maxv = out[0];
      for (std::size_t c = 1; c < cols; ++c) maxv = std::max(maxv, out[c]);
      float total = 0.0f;
      for (std::size_t c = 0; c < cols; ++c) {
        out[c] = std::exp(out[c] - maxv);
        total += out[c];
      }
      for (std::size_t c = 0; c < cols; ++c) out[c] /= total;
    }
  });
  return Tensor(node);
}

Tensor attention_scores(const Tensor& q, const Tensor& k,
                        std::shared_ptr<const std::vector<float>> mask,
                        float scale, float mask_value) {
  check(mask != nullptr, "attention_scores: null mask");
  check(!q.requires_grad() && !k.requires_grad(),
        "attention_scores: inference-only; use matmul/transpose/scale/"
        "masked_fill/softmax when gradients are needed");
  check(q.shape().size() == 3 && q.shape() == k.shape(),
        "attention_scores: q and k must share a [BH, T, dk] shape");
  const std::size_t bh = q.dim(0), t = q.dim(1), dk = q.dim(2);
  const std::size_t n = bh * t * t;
  const std::size_t mn = mask->size();
  check(mn == n || (mn > 0 && n % mn == 0),
        "attention_scores: mask length must divide score count");
  auto node = make_node({bh, t, t}, {}, Init::kUninit);
  const float* qp = q.data().data();
  const float* kp = k.data().data();
  const float* mp = mask->data();
  float* op = node->value.data();
  // Lane by lane, scores = q_lane * k_lane^T through the dispatched packed
  // GEMM — dk reduces serially in ascending order, the exact dot the old
  // fused loop computed — then one parallel pass applies scale/mask and the
  // exact softmax row loop from attention_softmax. Masked scores are
  // computed and then overwritten; the skip-the-dot route produced the same
  // values, so this stays bit-identical to the composed matmul/transpose/
  // scale/masked_fill/softmax pipeline while the dots run on the SIMD
  // backend.
  for (std::size_t lane = 0; lane < bh; ++lane) {
    gemm<false>(t, t, dk, MatRef{qp + lane * t * dk, dk, 1},
                MatRef{kp + lane * t * dk, 1, dk}, op + lane * t * t,
                /*allow_parallel=*/true);
  }
  parallel_rows(bh * t, t, [=](std::size_t lo, std::size_t hi) {
    for (std::size_t r = lo; r < hi; ++r) {
      float* out = op + r * t;
      const std::size_t base = r * t;
      for (std::size_t j = 0; j < t; ++j)
        out[j] = mp[(base + j) % mn] != 0.0f ? out[j] * scale : mask_value;
      float maxv = out[0];
      for (std::size_t j = 1; j < t; ++j) maxv = std::max(maxv, out[j]);
      float total = 0.0f;
      for (std::size_t j = 0; j < t; ++j) {
        out[j] = std::exp(out[j] - maxv);
        total += out[j];
      }
      for (std::size_t j = 0; j < t; ++j) out[j] /= total;
    }
  });
  return Tensor(node);
}

Tensor attention_apply(const Tensor& attn, const Tensor& v) {
  check(!attn.requires_grad() && !v.requires_grad(),
        "attention_apply: inference-only; use matmul when gradients are "
        "needed");
  check(attn.shape().size() == 3 && v.shape().size() == 3 &&
            attn.dim(0) == v.dim(0) && attn.dim(1) == v.dim(1) &&
            attn.dim(2) == v.dim(1),
        "attention_apply: attn [BH, T, T] and v [BH, T, dk] required");
  const std::size_t bh = attn.dim(0), t = attn.dim(1), dk = v.dim(2);
  auto node = make_node({bh, t, dk}, {}, Init::kUninit);
  const float* ap = attn.data().data();
  const float* vp = v.data().data();
  float* op = node->value.data();
  // Lane by lane, context = attn_lane * v_lane through the dispatched
  // packed GEMM. Per output element it accumulates attn[i, j] * v[j, c]
  // over j in ascending order — the batched GEMM's fixed serial
  // K-reduction — so the result matches matmul(attn, v) element for
  // element on every backend.
  for (std::size_t lane = 0; lane < bh; ++lane) {
    gemm<false>(t, dk, t, MatRef{ap + lane * t * t, t, 1},
                MatRef{vp + lane * t * dk, dk, 1}, op + lane * t * dk,
                /*allow_parallel=*/true);
  }
  return Tensor(node);
}

Tensor log_softmax(const Tensor& a) {
  const auto [rows, cols] = last_dim(a.shape());
  auto node = make_node(a.shape(), {a.node()}, Init::kUninit);
  const float* ap = a.data().data();
  float* op = node->value.data();
  parallel_rows(rows, cols, [=, cols = cols](std::size_t lo, std::size_t hi) {
    for (std::size_t r = lo; r < hi; ++r) {
      const float* in = ap + r * cols;
      float* out = op + r * cols;
      float maxv = in[0];
      for (std::size_t c = 1; c < cols; ++c) maxv = std::max(maxv, in[c]);
      float total = 0.0f;
      for (std::size_t c = 0; c < cols; ++c) total += std::exp(in[c] - maxv);
      const float log_total = std::log(total) + maxv;
      for (std::size_t c = 0; c < cols; ++c) out[c] = in[c] - log_total;
    }
  });
  set_backward(node, [rows = rows, cols = cols](TensorNode& self) {
    TensorNode& A = *self.parents[0];
    if (!A.requires_grad) return;
    const float* yp = self.value.data();
    const float* gp = self.grad.data();
    float* gap = A.grad.data();
    parallel_rows(rows, cols, [=](std::size_t lo, std::size_t hi) {
      for (std::size_t r = lo; r < hi; ++r) {
        const float* y = yp + r * cols;
        const float* g = gp + r * cols;
        float gsum = 0.0f;
        for (std::size_t c = 0; c < cols; ++c) gsum += g[c];
        float* ga = gap + r * cols;
        for (std::size_t c = 0; c < cols; ++c)
          ga[c] += g[c] - std::exp(y[c]) * gsum;
      }
    });
  });
  return Tensor(node);
}

Tensor layer_norm(const Tensor& a, const Tensor& gain, const Tensor& bias,
                  float eps) {
  const auto [rows, cols] = last_dim(a.shape());
  check(gain.size() == cols && bias.size() == cols,
        "layer_norm: gain/bias must have last-dim length");
  auto node =
      make_node(a.shape(), {a.node(), gain.node(), bias.node()},
                Init::kUninit);
  // Cache per-row mean and inverse stddev for the backward pass — skipped
  // entirely on the no-grad route (same arithmetic either way, so results
  // stay bit-identical).
  auto stats = node->requires_grad
                   ? std::make_shared<std::vector<float>>(rows * 2)
                   : nullptr;
  {
    const float* ap = a.data().data();
    const float* g = gain.data().data();
    const float* b = bias.data().data();
    float* op = node->value.data();
    float* st = stats ? stats->data() : nullptr;
    parallel_rows(rows, cols,
                  [=, cols = cols](std::size_t lo, std::size_t hi) {
      for (std::size_t r = lo; r < hi; ++r) {
        const float* in = ap + r * cols;
        float mean = 0.0f;
        for (std::size_t c = 0; c < cols; ++c) mean += in[c];
        mean /= static_cast<float>(cols);
        float var = 0.0f;
        for (std::size_t c = 0; c < cols; ++c) {
          const float d = in[c] - mean;
          var += d * d;
        }
        var /= static_cast<float>(cols);
        const float inv_std = 1.0f / std::sqrt(var + eps);
        if (st) {
          st[r * 2] = mean;
          st[r * 2 + 1] = inv_std;
        }
        float* out = op + r * cols;
        for (std::size_t c = 0; c < cols; ++c)
          out[c] = (in[c] - mean) * inv_std * g[c] + b[c];
      }
    });
  }
  set_backward(node, [rows = rows, cols = cols, stats](TensorNode& self) {
    TensorNode& A = *self.parents[0];
    TensorNode& G = *self.parents[1];
    TensorNode& B = *self.parents[2];
    const float* st = stats->data();
    const float* in0 = A.value.data();
    const float* gout0 = self.grad.data();
    const float* g = G.value.data();
    // Gain/bias gradients reduce over all rows into `cols` slots: serial,
    // fixed order (and race-free).
    if (G.requires_grad || B.requires_grad) {
      for (std::size_t r = 0; r < rows; ++r) {
        const float mean = st[r * 2];
        const float inv_std = st[r * 2 + 1];
        const float* in = in0 + r * cols;
        const float* gout = gout0 + r * cols;
        for (std::size_t c = 0; c < cols; ++c) {
          const float xhat = (in[c] - mean) * inv_std;
          if (G.requires_grad) G.grad[c] += gout[c] * xhat;
          if (B.requires_grad) B.grad[c] += gout[c];
        }
      }
    }
    // Input gradient is row-owned: parallel.
    if (A.requires_grad) {
      float* ga0 = A.grad.data();
      parallel_rows(rows, cols, [=](std::size_t lo, std::size_t hi) {
        for (std::size_t r = lo; r < hi; ++r) {
          const float mean = st[r * 2];
          const float inv_std = st[r * 2 + 1];
          const float* in = in0 + r * cols;
          const float* gout = gout0 + r * cols;
          float sum_gy = 0.0f, sum_gy_xhat = 0.0f;
          for (std::size_t c = 0; c < cols; ++c) {
            const float gy = gout[c] * g[c];
            const float xhat = (in[c] - mean) * inv_std;
            sum_gy += gy;
            sum_gy_xhat += gy * xhat;
          }
          const float inv_n = 1.0f / static_cast<float>(cols);
          float* ga = ga0 + r * cols;
          for (std::size_t c = 0; c < cols; ++c) {
            const float gy = gout[c] * g[c];
            const float xhat = (in[c] - mean) * inv_std;
            ga[c] += inv_std *
                     (gy - inv_n * sum_gy - xhat * inv_n * sum_gy_xhat);
          }
        }
      });
    }
  });
  return Tensor(node);
}

Tensor embedding(const Tensor& weight, std::span<const int> ids) {
  check(weight.rank() == 2, "embedding: weight must be [V, D]");
  const std::size_t vocab = weight.dim(0);
  const std::size_t dim = weight.dim(1);
  auto node = make_node(Shape{ids.size(), dim}, {weight.node()},
                        Init::kUninit);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const int id = ids[i];
    check(id >= 0 && static_cast<std::size_t>(id) < vocab,
          "embedding: id out of range");
    std::copy_n(weight.data().data() + static_cast<std::size_t>(id) * dim,
                dim, node->value.data() + i * dim);
  }
  // The id copy exists only for the backward closure; the no-grad route
  // (frozen weights or inference mode) skips the allocation.
  auto ids_copy = node->requires_grad
                      ? std::make_shared<std::vector<int>>(ids.begin(),
                                                           ids.end())
                      : nullptr;
  set_backward(node, [ids_copy, dim](TensorNode& self) {
    TensorNode& W = *self.parents[0];
    if (!W.requires_grad) return;
    for (std::size_t i = 0; i < ids_copy->size(); ++i) {
      const auto id = static_cast<std::size_t>((*ids_copy)[i]);
      const float* g = self.grad.data() + i * dim;
      float* gw = W.grad.data() + id * dim;
      for (std::size_t d = 0; d < dim; ++d) gw[d] += g[d];
    }
  });
  return Tensor(node);
}

Tensor dropout(const Tensor& a, float p, bool train, Rng& rng) {
  if (!train || p <= 0.0f) return a;
  const std::size_t n = a.size();
  auto mask = std::make_shared<std::vector<float>>(n);
  const float keep_scale = 1.0f / (1.0f - p);
  // Mask draw stays serial: the rng stream must not depend on threading.
  for (std::size_t i = 0; i < n; ++i)
    (*mask)[i] = rng.chance(p) ? 0.0f : keep_scale;
  auto node = make_node(a.shape(), {a.node()}, Init::kUninit);
  const float* ap = a.data().data();
  const float* mp = mask->data();
  float* op = node->value.data();
  parallel_elems(n, [=](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) op[i] = ap[i] * mp[i];
  });
  set_backward(node, [mask, n](TensorNode& self) {
    TensorNode& A = *self.parents[0];
    if (!A.requires_grad) return;
    const float* g = self.grad.data();
    const float* mp = mask->data();
    float* ga = A.grad.data();
    parallel_elems(n, [=](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) ga[i] += g[i] * mp[i];
    });
  });
  return Tensor(node);
}

Tensor transpose(const Tensor& a) {
  const MatView v = as_matrices(a.shape(), "transpose");
  Shape out_shape = a.shape();
  std::swap(out_shape[out_shape.size() - 1], out_shape[out_shape.size() - 2]);
  auto node = make_node(std::move(out_shape), {a.node()}, Init::kUninit);
  for (std::size_t batch_i = 0; batch_i < v.batch; ++batch_i) {
    const float* in = a.data().data() + batch_i * v.rows * v.cols;
    float* out = node->value.data() + batch_i * v.rows * v.cols;
    for (std::size_t i = 0; i < v.rows; ++i)
      for (std::size_t j = 0; j < v.cols; ++j)
        out[j * v.rows + i] = in[i * v.cols + j];
  }
  set_backward(node, [v](TensorNode& self) {
    TensorNode& A = *self.parents[0];
    if (!A.requires_grad) return;
    for (std::size_t batch_i = 0; batch_i < v.batch; ++batch_i) {
      const float* g = self.grad.data() + batch_i * v.rows * v.cols;
      float* ga = A.grad.data() + batch_i * v.rows * v.cols;
      for (std::size_t i = 0; i < v.rows; ++i)
        for (std::size_t j = 0; j < v.cols; ++j)
          ga[i * v.cols + j] += g[j * v.rows + i];
    }
  });
  return Tensor(node);
}

Tensor reshape(const Tensor& a, Shape shape) {
  check(numel(shape) == a.size(), "reshape: element count mismatch " +
                                      shape_str(a.shape()) + " -> " +
                                      shape_str(shape));
  auto node = make_node(std::move(shape), {a.node()}, Init::kUninit);
  node->value.assign(a.data().begin(), a.data().end());
  set_backward(node, [](TensorNode& self) {
    TensorNode& A = *self.parents[0];
    if (!A.requires_grad) return;
    for (std::size_t i = 0; i < self.grad.size(); ++i)
      A.grad[i] += self.grad[i];
  });
  return Tensor(node);
}

Tensor slice_rows(const Tensor& a, std::size_t begin, std::size_t end) {
  check(a.rank() == 2, "slice_rows: rank-2 only");
  check(begin <= end && end <= a.dim(0), "slice_rows: bad range");
  const std::size_t cols = a.dim(1);
  auto node =
      make_node(Shape{end - begin, cols}, {a.node()}, Init::kUninit);
  std::copy_n(a.data().data() + begin * cols, (end - begin) * cols,
              node->value.data());
  set_backward(node, [begin, cols](TensorNode& self) {
    TensorNode& A = *self.parents[0];
    if (!A.requires_grad) return;
    for (std::size_t i = 0; i < self.grad.size(); ++i)
      A.grad[begin * cols + i] += self.grad[i];
  });
  return Tensor(node);
}

Tensor concat_rows(const std::vector<Tensor>& parts) {
  check(!parts.empty(), "concat_rows: empty input");
  const std::size_t cols = parts[0].dim(1);
  std::size_t rows = 0;
  std::vector<std::shared_ptr<TensorNode>> parents;
  for (const Tensor& t : parts) {
    check(t.rank() == 2 && t.dim(1) == cols, "concat_rows: column mismatch");
    rows += t.dim(0);
    parents.push_back(t.node());
  }
  auto node = make_node(Shape{rows, cols}, std::move(parents), Init::kUninit);
  std::size_t at = 0;
  for (const Tensor& t : parts) {
    std::copy_n(t.data().data(), t.size(), node->value.data() + at);
    at += t.size();
  }
  set_backward(node, [](TensorNode& self) {
    std::size_t at = 0;
    for (const auto& p : self.parents) {
      if (p->requires_grad)
        for (std::size_t i = 0; i < p->value.size(); ++i)
          p->grad[i] += self.grad[at + i];
      at += p->value.size();
    }
  });
  return Tensor(node);
}

Tensor mean(const Tensor& a) {
  auto node = make_node(Shape{1}, {a.node()});
  const std::size_t n = a.size();
  float total = 0.0f;
  for (float v : a.data()) total += v;
  node->value[0] = total / static_cast<float>(n);
  set_backward(node, [n](TensorNode& self) {
    TensorNode& A = *self.parents[0];
    if (!A.requires_grad) return;
    const float g = self.grad[0] / static_cast<float>(n);
    for (std::size_t i = 0; i < n; ++i) A.grad[i] += g;
  });
  return Tensor(node);
}

Tensor sum(const Tensor& a) {
  auto node = make_node(Shape{1}, {a.node()});
  float total = 0.0f;
  for (float v : a.data()) total += v;
  node->value[0] = total;
  set_backward(node, [n = a.size()](TensorNode& self) {
    TensorNode& A = *self.parents[0];
    if (!A.requires_grad) return;
    for (std::size_t i = 0; i < n; ++i) A.grad[i] += self.grad[0];
  });
  return Tensor(node);
}

Tensor mean_rows(const Tensor& a) {
  check(a.rank() == 2, "mean_rows: rank-2 only");
  const std::size_t rows = a.dim(0);
  const std::size_t cols = a.dim(1);
  check(rows > 0, "mean_rows: empty tensor");
  auto node = make_node(Shape{cols}, {a.node()});
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      node->value[c] += a.data()[r * cols + c];
  for (std::size_t c = 0; c < cols; ++c)
    node->value[c] /= static_cast<float>(rows);
  set_backward(node, [rows, cols](TensorNode& self) {
    TensorNode& A = *self.parents[0];
    if (!A.requires_grad) return;
    for (std::size_t r = 0; r < rows; ++r)
      for (std::size_t c = 0; c < cols; ++c)
        A.grad[r * cols + c] += self.grad[c] / static_cast<float>(rows);
  });
  return Tensor(node);
}

Tensor remap(const Tensor& a, Shape out_shape,
             std::shared_ptr<const std::vector<std::size_t>> map) {
  check(map != nullptr && map->size() == numel(out_shape),
        "remap: map size must match output shape");
  const std::size_t in_size = a.size();
  auto node = make_node(std::move(out_shape), {a.node()}, Init::kUninit);
  const float* in = a.data().data();
  for (std::size_t i = 0; i < map->size(); ++i) {
    check((*map)[i] < in_size, "remap: index out of range");
    node->value[i] = in[(*map)[i]];
  }
  set_backward(node, [map](TensorNode& self) {
    TensorNode& A = *self.parents[0];
    if (!A.requires_grad) return;
    for (std::size_t i = 0; i < map->size(); ++i)
      A.grad[(*map)[i]] += self.grad[i];
  });
  return Tensor(node);
}

Tensor masked_fill(const Tensor& a, std::span<const float> mask,
                   float mask_value) {
  return masked_fill(
      a, std::make_shared<const std::vector<float>>(mask.begin(), mask.end()),
      mask_value);
}

Tensor masked_fill(const Tensor& a,
                   std::shared_ptr<const std::vector<float>> mask,
                   float mask_value) {
  check(mask != nullptr, "masked_fill: null mask");
  const std::size_t n = a.size();
  const std::size_t mn = mask->size();
  check(mn == n || (mn > 0 && n % mn == 0),
        "masked_fill: mask length must divide tensor size");
  auto node = make_node(a.shape(), {a.node()}, Init::kUninit);
  const float* ap = a.data().data();
  const float* mp = mask->data();
  float* op = node->value.data();
  parallel_elems(n, [=](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i)
      op[i] = mp[i % mn] != 0.0f ? ap[i] : mask_value;
  });
  set_backward(node, [mask, n, mn](TensorNode& self) {
    TensorNode& A = *self.parents[0];
    if (!A.requires_grad) return;
    const float* g = self.grad.data();
    const float* mp = mask->data();
    float* ga = A.grad.data();
    parallel_elems(n, [=](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i)
        if (mp[i % mn] != 0.0f) ga[i] += g[i];
    });
  });
  return Tensor(node);
}

Tensor cross_entropy(const Tensor& logits, std::span<const int> targets) {
  check(logits.rank() == 2, "cross_entropy: logits must be [N, C]");
  const std::size_t n = logits.dim(0);
  const std::size_t classes = logits.dim(1);
  check(targets.size() == n, "cross_entropy: target count mismatch");

  auto tgt = std::make_shared<std::vector<int>>(targets.begin(),
                                                targets.end());
  // Cache probabilities for the backward pass.
  auto probs = std::make_shared<std::vector<float>>(n * classes);
  auto node = make_node(Shape{1}, {logits.node()});
  double total = 0.0;
  std::size_t active = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const float* in = logits.data().data() + i * classes;
    float* p = probs->data() + i * classes;
    float maxv = in[0];
    for (std::size_t c = 1; c < classes; ++c) maxv = std::max(maxv, in[c]);
    float denom = 0.0f;
    for (std::size_t c = 0; c < classes; ++c) {
      p[c] = std::exp(in[c] - maxv);
      denom += p[c];
    }
    for (std::size_t c = 0; c < classes; ++c) p[c] /= denom;
    const int t = (*tgt)[i];
    if (t < 0) continue;  // ignored position
    check(static_cast<std::size_t>(t) < classes,
          "cross_entropy: target out of range");
    total += -std::log(std::max(p[t], 1e-12f));
    ++active;
  }
  const std::size_t denom_count = active == 0 ? 1 : active;
  node->value[0] = static_cast<float>(total / denom_count);
  set_backward(node, [tgt, probs, n, classes, denom_count](TensorNode& self) {
    TensorNode& L = *self.parents[0];
    if (!L.requires_grad) return;
    const float g = self.grad[0] / static_cast<float>(denom_count);
    for (std::size_t i = 0; i < n; ++i) {
      const int t = (*tgt)[i];
      if (t < 0) continue;
      const float* p = probs->data() + i * classes;
      float* gl = L.grad.data() + i * classes;
      for (std::size_t c = 0; c < classes; ++c)
        gl[c] += g * (p[c] - (static_cast<int>(c) == t ? 1.0f : 0.0f));
    }
  });
  return Tensor(node);
}

Tensor mse_loss(const Tensor& pred, std::span<const float> targets) {
  const std::size_t n = pred.size();
  check(targets.size() == n, "mse_loss: target count mismatch");
  auto tgt =
      std::make_shared<std::vector<float>>(targets.begin(), targets.end());
  auto node = make_node(Shape{1}, {pred.node()});
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = pred.data()[i] - (*tgt)[i];
    total += d * d;
  }
  node->value[0] = static_cast<float>(total / n);
  set_backward(node, [tgt, n](TensorNode& self) {
    TensorNode& P = *self.parents[0];
    if (!P.requires_grad) return;
    const float g = self.grad[0] * 2.0f / static_cast<float>(n);
    for (std::size_t i = 0; i < n; ++i)
      P.grad[i] += g * (P.value[i] - (*tgt)[i]);
  });
  return Tensor(node);
}

}  // namespace netfm::nn
