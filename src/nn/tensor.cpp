#include "nn/tensor.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <unordered_set>

namespace netfm::nn {
namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("netfm::nn: " + what);
}

void check(bool ok, const std::string& what) {
  if (!ok) fail(what);
}

std::shared_ptr<TensorNode> make_node(
    Shape shape, std::vector<std::shared_ptr<TensorNode>> parents) {
  auto node = std::make_shared<TensorNode>();
  node->shape = std::move(shape);
  node->value.assign(numel(node->shape), 0.0f);
  node->parents = std::move(parents);
  for (const auto& p : node->parents)
    if (p && p->requires_grad) node->requires_grad = true;
  return node;
}

/// Interprets a tensor as a batch of matrices: rank 2 = batch 1.
struct MatView {
  std::size_t batch, rows, cols;
};

MatView as_matrices(const Shape& s, const char* name) {
  if (s.size() == 2) return {1, s[0], s[1]};
  if (s.size() == 3) return {s[0], s[1], s[2]};
  fail(std::string(name) + ": expected rank 2 or 3, got " + shape_str(s));
}

}  // namespace

std::size_t numel(const Shape& shape) noexcept {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return n;
}

std::string shape_str(const Shape& shape) {
  std::string out = "[";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) out += ", ";
    out += std::to_string(shape[i]);
  }
  return out + "]";
}

void TensorNode::ensure_grad() {
  if (grad.size() != value.size()) grad.assign(value.size(), 0.0f);
}

Tensor::Tensor(Shape shape, bool requires_grad) {
  node_ = std::make_shared<TensorNode>();
  node_->shape = std::move(shape);
  node_->value.assign(numel(node_->shape), 0.0f);
  node_->requires_grad = requires_grad;
}

Tensor::Tensor(Shape shape, std::vector<float> values, bool requires_grad) {
  check(numel(shape) == values.size(), "Tensor: values/shape mismatch");
  node_ = std::make_shared<TensorNode>();
  node_->shape = std::move(shape);
  node_->value = std::move(values);
  node_->requires_grad = requires_grad;
}

Tensor Tensor::scalar(float v) {
  return Tensor(Shape{1}, std::vector<float>{v});
}

Tensor Tensor::zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::full(Shape shape, float v) {
  Tensor t(std::move(shape));
  std::fill(t.data().begin(), t.data().end(), v);
  return t;
}

Tensor Tensor::randn(Shape shape, Rng& rng, float stddev, bool requires_grad) {
  Tensor t(std::move(shape), requires_grad);
  for (float& v : t.data())
    v = static_cast<float>(rng.normal(0.0, stddev));
  return t;
}

const Shape& Tensor::shape() const {
  check(defined(), "shape() on undefined tensor");
  return node_->shape;
}
std::size_t Tensor::size() const { return numel(shape()); }
std::size_t Tensor::dim(std::size_t i) const { return shape().at(i); }
std::size_t Tensor::rank() const { return shape().size(); }
bool Tensor::requires_grad() const { return defined() && node_->requires_grad; }
void Tensor::set_requires_grad(bool v) {
  check(defined(), "set_requires_grad on undefined tensor");
  node_->requires_grad = v;
}

std::span<float> Tensor::data() {
  check(defined(), "data() on undefined tensor");
  return node_->value;
}
std::span<const float> Tensor::data() const {
  check(defined(), "data() on undefined tensor");
  return node_->value;
}
std::span<float> Tensor::grad() {
  check(defined(), "grad() on undefined tensor");
  node_->ensure_grad();
  return node_->grad;
}
std::span<const float> Tensor::grad() const {
  check(defined(), "grad() on undefined tensor");
  const_cast<TensorNode*>(node_.get())->ensure_grad();
  return node_->grad;
}

float Tensor::item() const {
  check(size() == 1, "item() requires a scalar tensor");
  return data()[0];
}

void Tensor::zero_grad() {
  if (!defined()) return;
  std::fill(node_->grad.begin(), node_->grad.end(), 0.0f);
}

void Tensor::backward() {
  check(defined() && size() == 1, "backward() requires a scalar loss");
  // Topological order via iterative post-order DFS.
  std::vector<TensorNode*> order;
  std::unordered_set<TensorNode*> seen;
  std::vector<std::pair<TensorNode*, std::size_t>> stack;
  stack.emplace_back(node_.get(), 0);
  seen.insert(node_.get());
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->parents.size()) {
      TensorNode* child = node->parents[next_child++].get();
      if (child && !seen.count(child)) {
        seen.insert(child);
        stack.emplace_back(child, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
  node_->ensure_grad();
  node_->grad[0] = 1.0f;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    TensorNode* node = *it;
    if (node->backward && node->requires_grad) {
      for (const auto& p : node->parents)
        if (p && p->requires_grad) p->ensure_grad();
      node->ensure_grad();
      node->backward(*node);
    }
  }
}

Tensor Tensor::detach() const {
  check(defined(), "detach() on undefined tensor");
  auto node = std::make_shared<TensorNode>();
  node->shape = node_->shape;
  node->value = node_->value;
  node->requires_grad = false;
  return Tensor(std::move(node));
}

// ---- ops ----

Tensor matmul(const Tensor& a, const Tensor& b) {
  const MatView av = as_matrices(a.shape(), "matmul lhs");
  const MatView bv = as_matrices(b.shape(), "matmul rhs");
  const bool shared_rhs = a.rank() == 3 && b.rank() == 2;
  check(av.cols == bv.rows, "matmul: inner dims differ: " +
                                shape_str(a.shape()) + " x " +
                                shape_str(b.shape()));
  check(shared_rhs || av.batch == bv.batch, "matmul: batch mismatch");
  const std::size_t batch = av.batch;

  Shape out_shape = a.rank() == 3 ? Shape{batch, av.rows, bv.cols}
                                  : Shape{av.rows, bv.cols};
  auto node = make_node(std::move(out_shape), {a.node(), b.node()});

  const float* ap = a.data().data();
  const float* bp = b.data().data();
  float* op = node->value.data();
  const std::size_t m = av.rows, k = av.cols, n = bv.cols;
  for (std::size_t batch_i = 0; batch_i < batch; ++batch_i) {
    const float* abase = ap + batch_i * m * k;
    const float* bbase = shared_rhs ? bp : bp + batch_i * k * n;
    float* obase = op + batch_i * m * n;
    for (std::size_t i = 0; i < m; ++i) {
      float* orow = obase + i * n;
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float av_ik = abase[i * k + kk];
        if (av_ik == 0.0f) continue;
        const float* brow = bbase + kk * n;
        for (std::size_t j = 0; j < n; ++j) orow[j] += av_ik * brow[j];
      }
    }
  }

  node->backward = [m, k, n, batch, shared_rhs](TensorNode& self) {
    TensorNode& A = *self.parents[0];
    TensorNode& B = *self.parents[1];
    const float* gp = self.grad.data();
    for (std::size_t batch_i = 0; batch_i < batch; ++batch_i) {
      const float* gbase = gp + batch_i * m * n;
      const float* abase = A.value.data() + batch_i * m * k;
      const float* bbase =
          shared_rhs ? B.value.data() : B.value.data() + batch_i * k * n;
      if (A.requires_grad) {
        float* gabase = A.grad.data() + batch_i * m * k;
        // dA = dC * B^T
        for (std::size_t i = 0; i < m; ++i)
          for (std::size_t j = 0; j < n; ++j) {
            const float g = gbase[i * n + j];
            if (g == 0.0f) continue;
            const float* brow = bbase + j;  // column j of B
            float* garow = gabase + i * k;
            for (std::size_t kk = 0; kk < k; ++kk)
              garow[kk] += g * brow[kk * n];
          }
      }
      if (B.requires_grad) {
        float* gbbase = shared_rhs ? B.grad.data()
                                   : B.grad.data() + batch_i * k * n;
        // dB = A^T * dC
        for (std::size_t kk = 0; kk < k; ++kk)
          for (std::size_t i = 0; i < m; ++i) {
            const float av_ik = abase[i * k + kk];
            if (av_ik == 0.0f) continue;
            const float* grow = gbase + i * n;
            float* gbrow = gbbase + kk * n;
            for (std::size_t j = 0; j < n; ++j) gbrow[j] += av_ik * grow[j];
          }
      }
    }
  };
  return Tensor(node);
}

namespace {

/// add/sub with optional last-dim broadcast of b.
Tensor add_like(const Tensor& a, const Tensor& b, float sign) {
  const std::size_t an = a.size();
  const std::size_t bn = b.size();
  const std::size_t last = a.shape().back();
  const bool broadcast = bn != an;
  check(!broadcast || bn == last,
        "add: rhs must match shape or last dim, got " + shape_str(a.shape()) +
            " vs " + shape_str(b.shape()));

  auto node = make_node(a.shape(), {a.node(), b.node()});
  const float* ap = a.data().data();
  const float* bp = b.data().data();
  float* op = node->value.data();
  for (std::size_t i = 0; i < an; ++i)
    op[i] = ap[i] + sign * bp[broadcast ? i % last : i];

  node->backward = [an, last, broadcast, sign](TensorNode& self) {
    TensorNode& A = *self.parents[0];
    TensorNode& B = *self.parents[1];
    const float* g = self.grad.data();
    if (A.requires_grad)
      for (std::size_t i = 0; i < an; ++i) A.grad[i] += g[i];
    if (B.requires_grad) {
      if (broadcast) {
        for (std::size_t i = 0; i < an; ++i) B.grad[i % last] += sign * g[i];
      } else {
        for (std::size_t i = 0; i < an; ++i) B.grad[i] += sign * g[i];
      }
    }
  };
  return Tensor(node);
}

/// Shared unary-elementwise builder.
template <typename F, typename DF>
Tensor unary(const Tensor& a, F f, DF df) {
  auto node = make_node(a.shape(), {a.node()});
  const float* ap = a.data().data();
  float* op = node->value.data();
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i) op[i] = f(ap[i]);
  node->backward = [n, df](TensorNode& self) {
    TensorNode& A = *self.parents[0];
    if (!A.requires_grad) return;
    for (std::size_t i = 0; i < n; ++i)
      A.grad[i] += self.grad[i] * df(A.value[i], self.value[i]);
  };
  return Tensor(node);
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) { return add_like(a, b, 1.0f); }
Tensor sub(const Tensor& a, const Tensor& b) { return add_like(a, b, -1.0f); }

Tensor mul(const Tensor& a, const Tensor& b) {
  check(a.size() == b.size(), "mul: shape mismatch");
  auto node = make_node(a.shape(), {a.node(), b.node()});
  const std::size_t n = a.size();
  for (std::size_t i = 0; i < n; ++i)
    node->value[i] = a.data()[i] * b.data()[i];
  node->backward = [n](TensorNode& self) {
    TensorNode& A = *self.parents[0];
    TensorNode& B = *self.parents[1];
    for (std::size_t i = 0; i < n; ++i) {
      if (A.requires_grad) A.grad[i] += self.grad[i] * B.value[i];
      if (B.requires_grad) B.grad[i] += self.grad[i] * A.value[i];
    }
  };
  return Tensor(node);
}

Tensor scale(const Tensor& a, float s) {
  return unary(
      a, [s](float x) { return x * s; },
      [s](float, float) { return s; });
}

Tensor relu(const Tensor& a) {
  return unary(
      a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; });
}

Tensor gelu(const Tensor& a) {
  // tanh approximation of GELU (matches BERT).
  constexpr float kC = 0.7978845608f;  // sqrt(2/pi)
  return unary(
      a,
      [](float x) {
        const float inner = kC * (x + 0.044715f * x * x * x);
        return 0.5f * x * (1.0f + std::tanh(inner));
      },
      [](float x, float) {
        const float x3 = x * x * x;
        const float inner = kC * (x + 0.044715f * x3);
        const float t = std::tanh(inner);
        const float dinner = kC * (1.0f + 3.0f * 0.044715f * x * x);
        return 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * dinner;
      });
}

Tensor tanh_op(const Tensor& a) {
  return unary(
      a, [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; });
}

Tensor sigmoid(const Tensor& a) {
  return unary(
      a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float, float y) { return y * (1.0f - y); });
}

namespace {

/// Rows-of-last-dim iteration helper.
struct LastDim {
  std::size_t rows, cols;
};
LastDim last_dim(const Shape& s) {
  const std::size_t cols = s.back();
  return {numel(s) / cols, cols};
}

}  // namespace

Tensor softmax(const Tensor& a) {
  const auto [rows, cols] = last_dim(a.shape());
  auto node = make_node(a.shape(), {a.node()});
  for (std::size_t r = 0; r < rows; ++r) {
    const float* in = a.data().data() + r * cols;
    float* out = node->value.data() + r * cols;
    float maxv = in[0];
    for (std::size_t c = 1; c < cols; ++c) maxv = std::max(maxv, in[c]);
    float total = 0.0f;
    for (std::size_t c = 0; c < cols; ++c) {
      out[c] = std::exp(in[c] - maxv);
      total += out[c];
    }
    for (std::size_t c = 0; c < cols; ++c) out[c] /= total;
  }
  node->backward = [rows = rows, cols = cols](TensorNode& self) {
    TensorNode& A = *self.parents[0];
    if (!A.requires_grad) return;
    for (std::size_t r = 0; r < rows; ++r) {
      const float* y = self.value.data() + r * cols;
      const float* g = self.grad.data() + r * cols;
      float dot = 0.0f;
      for (std::size_t c = 0; c < cols; ++c) dot += y[c] * g[c];
      float* ga = A.grad.data() + r * cols;
      for (std::size_t c = 0; c < cols; ++c) ga[c] += y[c] * (g[c] - dot);
    }
  };
  return Tensor(node);
}

Tensor log_softmax(const Tensor& a) {
  const auto [rows, cols] = last_dim(a.shape());
  auto node = make_node(a.shape(), {a.node()});
  for (std::size_t r = 0; r < rows; ++r) {
    const float* in = a.data().data() + r * cols;
    float* out = node->value.data() + r * cols;
    float maxv = in[0];
    for (std::size_t c = 1; c < cols; ++c) maxv = std::max(maxv, in[c]);
    float total = 0.0f;
    for (std::size_t c = 0; c < cols; ++c) total += std::exp(in[c] - maxv);
    const float log_total = std::log(total) + maxv;
    for (std::size_t c = 0; c < cols; ++c) out[c] = in[c] - log_total;
  }
  node->backward = [rows = rows, cols = cols](TensorNode& self) {
    TensorNode& A = *self.parents[0];
    if (!A.requires_grad) return;
    for (std::size_t r = 0; r < rows; ++r) {
      const float* y = self.value.data() + r * cols;
      const float* g = self.grad.data() + r * cols;
      float gsum = 0.0f;
      for (std::size_t c = 0; c < cols; ++c) gsum += g[c];
      float* ga = A.grad.data() + r * cols;
      for (std::size_t c = 0; c < cols; ++c)
        ga[c] += g[c] - std::exp(y[c]) * gsum;
    }
  };
  return Tensor(node);
}

Tensor layer_norm(const Tensor& a, const Tensor& gain, const Tensor& bias,
                  float eps) {
  const auto [rows, cols] = last_dim(a.shape());
  check(gain.size() == cols && bias.size() == cols,
        "layer_norm: gain/bias must have last-dim length");
  auto node = make_node(a.shape(), {a.node(), gain.node(), bias.node()});
  // Cache per-row mean and inverse stddev for the backward pass.
  auto stats = std::make_shared<std::vector<float>>(rows * 2);
  for (std::size_t r = 0; r < rows; ++r) {
    const float* in = a.data().data() + r * cols;
    float mean = 0.0f;
    for (std::size_t c = 0; c < cols; ++c) mean += in[c];
    mean /= static_cast<float>(cols);
    float var = 0.0f;
    for (std::size_t c = 0; c < cols; ++c) {
      const float d = in[c] - mean;
      var += d * d;
    }
    var /= static_cast<float>(cols);
    const float inv_std = 1.0f / std::sqrt(var + eps);
    (*stats)[r * 2] = mean;
    (*stats)[r * 2 + 1] = inv_std;
    float* out = node->value.data() + r * cols;
    const float* g = gain.data().data();
    const float* b = bias.data().data();
    for (std::size_t c = 0; c < cols; ++c)
      out[c] = (in[c] - mean) * inv_std * g[c] + b[c];
  }
  node->backward = [rows = rows, cols = cols, stats](TensorNode& self) {
    TensorNode& A = *self.parents[0];
    TensorNode& G = *self.parents[1];
    TensorNode& B = *self.parents[2];
    for (std::size_t r = 0; r < rows; ++r) {
      const float mean = (*stats)[r * 2];
      const float inv_std = (*stats)[r * 2 + 1];
      const float* in = A.value.data() + r * cols;
      const float* gout = self.grad.data() + r * cols;
      const float* g = G.value.data();
      // xhat_c = (in[c]-mean)*inv_std
      if (G.requires_grad || B.requires_grad) {
        for (std::size_t c = 0; c < cols; ++c) {
          const float xhat = (in[c] - mean) * inv_std;
          if (G.requires_grad) G.grad[c] += gout[c] * xhat;
          if (B.requires_grad) B.grad[c] += gout[c];
        }
      }
      if (A.requires_grad) {
        float sum_gy = 0.0f, sum_gy_xhat = 0.0f;
        for (std::size_t c = 0; c < cols; ++c) {
          const float gy = gout[c] * g[c];
          const float xhat = (in[c] - mean) * inv_std;
          sum_gy += gy;
          sum_gy_xhat += gy * xhat;
        }
        const float inv_n = 1.0f / static_cast<float>(cols);
        float* ga = A.grad.data() + r * cols;
        for (std::size_t c = 0; c < cols; ++c) {
          const float gy = gout[c] * g[c];
          const float xhat = (in[c] - mean) * inv_std;
          ga[c] += inv_std *
                   (gy - inv_n * sum_gy - xhat * inv_n * sum_gy_xhat);
        }
      }
    }
  };
  return Tensor(node);
}

Tensor embedding(const Tensor& weight, std::span<const int> ids) {
  check(weight.rank() == 2, "embedding: weight must be [V, D]");
  const std::size_t vocab = weight.dim(0);
  const std::size_t dim = weight.dim(1);
  auto ids_copy = std::make_shared<std::vector<int>>(ids.begin(), ids.end());
  auto node =
      make_node(Shape{ids.size(), dim}, {weight.node()});
  for (std::size_t i = 0; i < ids_copy->size(); ++i) {
    const int id = (*ids_copy)[i];
    check(id >= 0 && static_cast<std::size_t>(id) < vocab,
          "embedding: id out of range");
    std::copy_n(weight.data().data() + static_cast<std::size_t>(id) * dim,
                dim, node->value.data() + i * dim);
  }
  node->backward = [ids_copy, dim](TensorNode& self) {
    TensorNode& W = *self.parents[0];
    if (!W.requires_grad) return;
    for (std::size_t i = 0; i < ids_copy->size(); ++i) {
      const auto id = static_cast<std::size_t>((*ids_copy)[i]);
      const float* g = self.grad.data() + i * dim;
      float* gw = W.grad.data() + id * dim;
      for (std::size_t d = 0; d < dim; ++d) gw[d] += g[d];
    }
  };
  return Tensor(node);
}

Tensor dropout(const Tensor& a, float p, bool train, Rng& rng) {
  if (!train || p <= 0.0f) return a;
  const std::size_t n = a.size();
  auto mask = std::make_shared<std::vector<float>>(n);
  const float keep_scale = 1.0f / (1.0f - p);
  for (std::size_t i = 0; i < n; ++i)
    (*mask)[i] = rng.chance(p) ? 0.0f : keep_scale;
  auto node = make_node(a.shape(), {a.node()});
  for (std::size_t i = 0; i < n; ++i)
    node->value[i] = a.data()[i] * (*mask)[i];
  node->backward = [mask, n](TensorNode& self) {
    TensorNode& A = *self.parents[0];
    if (!A.requires_grad) return;
    for (std::size_t i = 0; i < n; ++i)
      A.grad[i] += self.grad[i] * (*mask)[i];
  };
  return Tensor(node);
}

Tensor transpose(const Tensor& a) {
  const MatView v = as_matrices(a.shape(), "transpose");
  Shape out_shape = a.shape();
  std::swap(out_shape[out_shape.size() - 1], out_shape[out_shape.size() - 2]);
  auto node = make_node(std::move(out_shape), {a.node()});
  for (std::size_t batch_i = 0; batch_i < v.batch; ++batch_i) {
    const float* in = a.data().data() + batch_i * v.rows * v.cols;
    float* out = node->value.data() + batch_i * v.rows * v.cols;
    for (std::size_t i = 0; i < v.rows; ++i)
      for (std::size_t j = 0; j < v.cols; ++j)
        out[j * v.rows + i] = in[i * v.cols + j];
  }
  node->backward = [v](TensorNode& self) {
    TensorNode& A = *self.parents[0];
    if (!A.requires_grad) return;
    for (std::size_t batch_i = 0; batch_i < v.batch; ++batch_i) {
      const float* g = self.grad.data() + batch_i * v.rows * v.cols;
      float* ga = A.grad.data() + batch_i * v.rows * v.cols;
      for (std::size_t i = 0; i < v.rows; ++i)
        for (std::size_t j = 0; j < v.cols; ++j)
          ga[i * v.cols + j] += g[j * v.rows + i];
    }
  };
  return Tensor(node);
}

Tensor reshape(const Tensor& a, Shape shape) {
  check(numel(shape) == a.size(), "reshape: element count mismatch " +
                                      shape_str(a.shape()) + " -> " +
                                      shape_str(shape));
  auto node = make_node(std::move(shape), {a.node()});
  node->value.assign(a.data().begin(), a.data().end());
  node->backward = [](TensorNode& self) {
    TensorNode& A = *self.parents[0];
    if (!A.requires_grad) return;
    for (std::size_t i = 0; i < self.grad.size(); ++i)
      A.grad[i] += self.grad[i];
  };
  return Tensor(node);
}

Tensor slice_rows(const Tensor& a, std::size_t begin, std::size_t end) {
  check(a.rank() == 2, "slice_rows: rank-2 only");
  check(begin <= end && end <= a.dim(0), "slice_rows: bad range");
  const std::size_t cols = a.dim(1);
  auto node = make_node(Shape{end - begin, cols}, {a.node()});
  std::copy_n(a.data().data() + begin * cols, (end - begin) * cols,
              node->value.data());
  node->backward = [begin, cols](TensorNode& self) {
    TensorNode& A = *self.parents[0];
    if (!A.requires_grad) return;
    for (std::size_t i = 0; i < self.grad.size(); ++i)
      A.grad[begin * cols + i] += self.grad[i];
  };
  return Tensor(node);
}

Tensor concat_rows(const std::vector<Tensor>& parts) {
  check(!parts.empty(), "concat_rows: empty input");
  const std::size_t cols = parts[0].dim(1);
  std::size_t rows = 0;
  std::vector<std::shared_ptr<TensorNode>> parents;
  for (const Tensor& t : parts) {
    check(t.rank() == 2 && t.dim(1) == cols, "concat_rows: column mismatch");
    rows += t.dim(0);
    parents.push_back(t.node());
  }
  auto node = make_node(Shape{rows, cols}, std::move(parents));
  std::size_t at = 0;
  for (const Tensor& t : parts) {
    std::copy_n(t.data().data(), t.size(), node->value.data() + at);
    at += t.size();
  }
  node->backward = [](TensorNode& self) {
    std::size_t at = 0;
    for (const auto& p : self.parents) {
      if (p->requires_grad)
        for (std::size_t i = 0; i < p->value.size(); ++i)
          p->grad[i] += self.grad[at + i];
      at += p->value.size();
    }
  };
  return Tensor(node);
}

Tensor mean(const Tensor& a) {
  auto node = make_node(Shape{1}, {a.node()});
  const std::size_t n = a.size();
  float total = 0.0f;
  for (float v : a.data()) total += v;
  node->value[0] = total / static_cast<float>(n);
  node->backward = [n](TensorNode& self) {
    TensorNode& A = *self.parents[0];
    if (!A.requires_grad) return;
    const float g = self.grad[0] / static_cast<float>(n);
    for (std::size_t i = 0; i < n; ++i) A.grad[i] += g;
  };
  return Tensor(node);
}

Tensor sum(const Tensor& a) {
  auto node = make_node(Shape{1}, {a.node()});
  float total = 0.0f;
  for (float v : a.data()) total += v;
  node->value[0] = total;
  node->backward = [n = a.size()](TensorNode& self) {
    TensorNode& A = *self.parents[0];
    if (!A.requires_grad) return;
    for (std::size_t i = 0; i < n; ++i) A.grad[i] += self.grad[0];
  };
  return Tensor(node);
}

Tensor mean_rows(const Tensor& a) {
  check(a.rank() == 2, "mean_rows: rank-2 only");
  const std::size_t rows = a.dim(0);
  const std::size_t cols = a.dim(1);
  check(rows > 0, "mean_rows: empty tensor");
  auto node = make_node(Shape{cols}, {a.node()});
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      node->value[c] += a.data()[r * cols + c];
  for (std::size_t c = 0; c < cols; ++c)
    node->value[c] /= static_cast<float>(rows);
  node->backward = [rows, cols](TensorNode& self) {
    TensorNode& A = *self.parents[0];
    if (!A.requires_grad) return;
    for (std::size_t r = 0; r < rows; ++r)
      for (std::size_t c = 0; c < cols; ++c)
        A.grad[r * cols + c] += self.grad[c] / static_cast<float>(rows);
  };
  return Tensor(node);
}

Tensor remap(const Tensor& a, Shape out_shape,
             std::shared_ptr<const std::vector<std::size_t>> map) {
  check(map != nullptr && map->size() == numel(out_shape),
        "remap: map size must match output shape");
  const std::size_t in_size = a.size();
  auto node = make_node(std::move(out_shape), {a.node()});
  const float* in = a.data().data();
  for (std::size_t i = 0; i < map->size(); ++i) {
    check((*map)[i] < in_size, "remap: index out of range");
    node->value[i] = in[(*map)[i]];
  }
  node->backward = [map](TensorNode& self) {
    TensorNode& A = *self.parents[0];
    if (!A.requires_grad) return;
    for (std::size_t i = 0; i < map->size(); ++i)
      A.grad[(*map)[i]] += self.grad[i];
  };
  return Tensor(node);
}

Tensor masked_fill(const Tensor& a, std::span<const float> mask,
                   float mask_value) {
  const std::size_t n = a.size();
  const std::size_t mn = mask.size();
  check(mn == n || (mn > 0 && n % mn == 0),
        "masked_fill: mask length must divide tensor size");
  auto mask_copy =
      std::make_shared<std::vector<float>>(mask.begin(), mask.end());
  auto node = make_node(a.shape(), {a.node()});
  for (std::size_t i = 0; i < n; ++i)
    node->value[i] =
        (*mask_copy)[i % mn] != 0.0f ? a.data()[i] : mask_value;
  node->backward = [mask_copy, n, mn](TensorNode& self) {
    TensorNode& A = *self.parents[0];
    if (!A.requires_grad) return;
    for (std::size_t i = 0; i < n; ++i)
      if ((*mask_copy)[i % mn] != 0.0f) A.grad[i] += self.grad[i];
  };
  return Tensor(node);
}

Tensor cross_entropy(const Tensor& logits, std::span<const int> targets) {
  check(logits.rank() == 2, "cross_entropy: logits must be [N, C]");
  const std::size_t n = logits.dim(0);
  const std::size_t classes = logits.dim(1);
  check(targets.size() == n, "cross_entropy: target count mismatch");

  auto tgt = std::make_shared<std::vector<int>>(targets.begin(),
                                                targets.end());
  // Cache probabilities for the backward pass.
  auto probs = std::make_shared<std::vector<float>>(n * classes);
  auto node = make_node(Shape{1}, {logits.node()});
  double total = 0.0;
  std::size_t active = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const float* in = logits.data().data() + i * classes;
    float* p = probs->data() + i * classes;
    float maxv = in[0];
    for (std::size_t c = 1; c < classes; ++c) maxv = std::max(maxv, in[c]);
    float denom = 0.0f;
    for (std::size_t c = 0; c < classes; ++c) {
      p[c] = std::exp(in[c] - maxv);
      denom += p[c];
    }
    for (std::size_t c = 0; c < classes; ++c) p[c] /= denom;
    const int t = (*tgt)[i];
    if (t < 0) continue;  // ignored position
    check(static_cast<std::size_t>(t) < classes,
          "cross_entropy: target out of range");
    total += -std::log(std::max(p[t], 1e-12f));
    ++active;
  }
  const std::size_t denom_count = active == 0 ? 1 : active;
  node->value[0] = static_cast<float>(total / denom_count);
  node->backward = [tgt, probs, n, classes, denom_count](TensorNode& self) {
    TensorNode& L = *self.parents[0];
    if (!L.requires_grad) return;
    const float g = self.grad[0] / static_cast<float>(denom_count);
    for (std::size_t i = 0; i < n; ++i) {
      const int t = (*tgt)[i];
      if (t < 0) continue;
      const float* p = probs->data() + i * classes;
      float* gl = L.grad.data() + i * classes;
      for (std::size_t c = 0; c < classes; ++c)
        gl[c] += g * (p[c] - (static_cast<int>(c) == t ? 1.0f : 0.0f));
    }
  };
  return Tensor(node);
}

Tensor mse_loss(const Tensor& pred, std::span<const float> targets) {
  const std::size_t n = pred.size();
  check(targets.size() == n, "mse_loss: target count mismatch");
  auto tgt =
      std::make_shared<std::vector<float>>(targets.begin(), targets.end());
  auto node = make_node(Shape{1}, {pred.node()});
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = pred.data()[i] - (*tgt)[i];
    total += d * d;
  }
  node->value[0] = static_cast<float>(total / n);
  node->backward = [tgt, n](TensorNode& self) {
    TensorNode& P = *self.parents[0];
    if (!P.requires_grad) return;
    const float g = self.grad[0] * 2.0f / static_cast<float>(n);
    for (std::size_t i = 0; i < n; ++i)
      P.grad[i] += g * (P.value[i] - (*tgt)[i]);
  };
  return Tensor(node);
}

}  // namespace netfm::nn
