// Word2Vec skip-gram with negative sampling (Mikolov et al., 2013) — the
// pre-BERT embedding method the paper's Background (§2) walks through.
// Like GloVe, it yields context-independent vectors; it serves as a
// second classical baseline and powers the "King - Man + Woman = Queen"
// style analogy probes at the token level.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"

namespace netfm::nn {

struct Word2VecConfig {
  std::size_t dim = 32;
  std::size_t window = 4;        // symmetric context radius
  std::size_t negatives = 5;     // negative samples per positive
  std::size_t epochs = 5;
  float lr = 0.025f;             // linearly decayed to lr/20
  double subsample = 1e-3;       // frequent-token downsampling threshold
  std::uint64_t seed = 17;
};

/// Trains skip-gram embeddings over token-id sequences.
class Word2Vec {
 public:
  Word2Vec(std::size_t vocab_size, const Word2VecConfig& config);

  /// One pass over the corpus per epoch (call train() once; it loops).
  void train(const std::vector<std::vector<int>>& corpus);

  /// Input-vector lookup, row-major [vocab, dim].
  const std::vector<float>& vectors() const noexcept { return input_; }
  std::size_t dim() const noexcept { return config_.dim; }
  std::size_t vocab_size() const noexcept { return vocab_; }

  /// Cosine similarity between two token ids.
  double similarity(int a, int b) const;

  /// Ids of the k nearest tokens to `id` (excluding itself).
  std::vector<std::pair<int, double>> nearest(int id, std::size_t k) const;

 private:
  void train_pair(int center, int context, float lr, Rng& rng);

  std::size_t vocab_;
  Word2VecConfig config_;
  std::vector<float> input_;    // "word" vectors
  std::vector<float> output_;   // "context" vectors
  std::vector<double> unigram_; // negative-sampling distribution (^0.75)
  std::vector<double> frequency_;  // token frequency for subsampling
};

}  // namespace netfm::nn
