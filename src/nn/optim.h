// Optimizers and learning-rate schedules for the named-parameter set a
// model exposes. Parameters are identified by pointer to their TensorNode
// so optimizer state survives across steps.
#pragma once

#include <string>
#include <vector>

#include "nn/tensor.h"

namespace netfm::nn {

/// A named trainable tensor (the unit of serialization and optimization).
struct Parameter {
  std::string name;
  Tensor tensor;
};

/// The list every model exposes. Non-owning views are fine: Tensor is a
/// shared handle.
using ParameterList = std::vector<Parameter>;

/// Clips the global L2 norm of all gradients to `max_norm`; returns the
/// pre-clip norm.
float clip_grad_norm(ParameterList& params, float max_norm);

/// Zeroes every parameter gradient.
void zero_grad(ParameterList& params);

/// Plain SGD with optional momentum.
class Sgd {
 public:
  explicit Sgd(float lr, float momentum = 0.0f)
      : lr_(lr), momentum_(momentum) {}

  void step(ParameterList& params);
  void set_lr(float lr) noexcept { lr_ = lr; }
  float lr() const noexcept { return lr_; }

 private:
  float lr_;
  float momentum_;
  std::vector<std::vector<float>> velocity_;
};

/// Adam with decoupled weight decay (AdamW).
class Adam {
 public:
  explicit Adam(float lr, float beta1 = 0.9f, float beta2 = 0.999f,
                float eps = 1e-8f, float weight_decay = 0.0f)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps),
        weight_decay_(weight_decay) {}

  void step(ParameterList& params);
  void set_lr(float lr) noexcept { lr_ = lr; }
  float lr() const noexcept { return lr_; }
  std::int64_t steps() const noexcept { return t_; }

 private:
  float lr_, beta1_, beta2_, eps_, weight_decay_;
  std::int64_t t_ = 0;
  std::vector<std::vector<float>> m_, v_;
};

/// Linear warmup to `peak_lr` over `warmup_steps`, then linear decay to 0
/// at `total_steps` (the BERT schedule).
class WarmupLinearSchedule {
 public:
  WarmupLinearSchedule(float peak_lr, std::int64_t warmup_steps,
                       std::int64_t total_steps) noexcept
      : peak_lr_(peak_lr), warmup_(warmup_steps), total_(total_steps) {}

  float lr_at(std::int64_t step) const noexcept;

 private:
  float peak_lr_;
  std::int64_t warmup_, total_;
};

}  // namespace netfm::nn
