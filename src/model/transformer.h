// BERT-style transformer encoder built on the netfm::nn autograd engine.
//
// Forward is batched: a batch of B sequences of length T flows through the
// network as rank-2 [B*T, D] activations, with attention computed as
// batched rank-3 [B*H, T, *] matmuls (head split/merge via nn::remap).
// Post-LN residual blocks, learned positions, GELU FFN — the original BERT
// recipe, scaled down.
#pragma once

#include <memory>
#include <span>

#include "model/config.h"
#include "model/kv_pool.h"
#include "nn/optim.h"
#include "nn/quant.h"
#include "nn/tensor.h"

namespace netfm::model {

/// A batch of same-length token sequences plus masks.
struct Batch {
  std::size_t batch_size = 0;
  std::size_t seq_len = 0;
  std::vector<int> token_ids;    // B*T, row-major
  std::vector<int> segment_ids;  // B*T; all zero if unused
  std::vector<float> attention_mask;  // B*T; 1 = real token, 0 = padding

  /// Single-sequence convenience (B=1, no padding).
  static Batch single(std::span<const int> ids);
};

/// Per-forward attention geometry shared by every encoder block: the head
/// split/merge index maps and the key-padding/causal score mask are built
/// once per batch in TransformerEncoder::forward instead of once per layer
/// per forward. The maps depend only on (batch, seq, heads), so an encoder
/// reuses them across forwards with the same geometry; the score mask also
/// depends on the batch's attention_mask, so it is rebuilt per forward.
struct AttentionContext {
  std::size_t batch_size = 0, seq_len = 0, heads = 0, head_dim = 0;
  nn::Shape headed;  // [B*H, T, head_dim]
  std::shared_ptr<const std::vector<std::size_t>> split;  // [B*T,D]->headed
  std::shared_ptr<const std::vector<std::size_t>> merge;  // headed->[B*T,D]
  std::shared_ptr<const std::vector<float>> score_mask;   // [B*H, T, T]

  bool same_geometry(const Batch& batch,
                     const TransformerConfig& config) const noexcept;

  /// Builds the context; reuses `previous`'s index maps when the geometry
  /// matches (the common case of fixed-shape training batches).
  static AttentionContext build(const Batch& batch,
                                const TransformerConfig& config,
                                const AttentionContext* previous = nullptr);
};

/// Per-layer attention key/value history for incremental decoding: feeding
/// token t through TransformerEncoder::forward_incremental appends one
/// [H, dk] row per layer and attends over the cached prefix, so a step
/// costs O(T) in the sequence length instead of the O(T^2) of re-running
/// the full forward. Rows [0, length) of each layer buffer are valid.
///
/// The cache holds projections of the *current* weights: reset() it after
/// any weight mutation (training step, checkpoint load) — stale rows would
/// silently mix old and new parameters (see DESIGN.md).
struct KvCache {
  std::size_t layers = 0, heads = 0, head_dim = 0, capacity = 0;
  std::size_t length = 0;  // tokens cached so far
  // One [H, capacity, dk] row-major buffer per layer.
  std::vector<nn::FloatBuffer> keys, values;

  /// Forgets all cached tokens (keeps the allocation).
  void reset() noexcept { length = 0; }
};

/// Dense affine layer (weight [in, out], bias [out]).
class Linear {
 public:
  Linear() = default;
  Linear(std::size_t in, std::size_t out, Rng& rng, const std::string& name);

  /// In inference mode with NETFM_QUANT on, routes through the int8
  /// weight-quantized GEMM (falling back to fp32 when the layer cannot
  /// quantize — see nn/quant.h); otherwise the fp32 autograd matmul.
  nn::Tensor forward(const nn::Tensor& x) const;
  void collect(nn::ParameterList& out) const;

  /// Eagerly packs the int8 weight cache (no-op when quant is off).
  void prequantize() const;

 private:
  nn::Parameter weight_, bias_;
  mutable nn::quant::PackedWeights quant_cache_;
};

/// LayerNorm with learned gain/bias.
class LayerNorm {
 public:
  LayerNorm() = default;
  LayerNorm(std::size_t dim, const std::string& name);

  nn::Tensor forward(const nn::Tensor& x) const;
  void collect(nn::ParameterList& out) const;

 private:
  nn::Parameter gain_, bias_;
};

/// One encoder block: self-attention + FFN, each with residual + LayerNorm.
class EncoderBlock {
 public:
  EncoderBlock(const TransformerConfig& config, Rng& rng,
               const std::string& prefix);

  /// x is [B*T, D]; returns same shape. `train` enables dropout. `ctx` is
  /// the batch's attention geometry, built once per forward by the encoder
  /// (AttentionContext::build) and shared across layers.
  nn::Tensor forward(const nn::Tensor& x, const AttentionContext& ctx,
                     bool train, Rng& rng) const;

  /// One-token decode step: x is [1, D] for the token at position
  /// `cache.length`; appends this layer's K/V rows to the cache and attends
  /// over the cached prefix. Bit-identical to the corresponding row of the
  /// full forward (see the implementation notes). Does not update
  /// last_attention().
  nn::Tensor forward_incremental(const nn::Tensor& x, KvCache& cache,
                                 std::size_t layer) const;

  /// Batched one-token decode step over B independent sessions: x is
  /// [B, D] (row b is session b's token at position caches[b]->length).
  /// Appends each row's K/V into its session's current KV block and
  /// attends over that session's block table. Row b is bit-identical to
  /// the dense forward_incremental on session b alone — projections,
  /// LayerNorm, GELU, and the quantized GEMM are all row-independent, and
  /// the per-head attention loops reduce the same indices in the same
  /// order through the block table. Callers must have reserved each
  /// cache's block for this step already (see
  /// TransformerEncoder::forward_incremental_batch).
  nn::Tensor forward_incremental_batch(const nn::Tensor& x,
                                       std::span<PagedKvCache* const> caches,
                                       std::size_t layer) const;

  void collect(nn::ParameterList& out) const;

  /// Eagerly packs every projection's int8 weight cache (no-op when quant
  /// is off).
  void prequantize() const;

  /// Attention probabilities from the most recent forward: one tensor of
  /// shape [B*H, T, T]. Kept for interpretability (attention rollout).
  const nn::Tensor& last_attention() const noexcept { return last_attention_; }

 private:
  const TransformerConfig* config_;
  Linear query_, key_, value_, output_;
  Linear ffn_in_, ffn_out_;
  LayerNorm norm_attn_, norm_ffn_;
  mutable nn::Tensor last_attention_;
};

/// The full encoder: embeddings -> N blocks.
class TransformerEncoder {
 public:
  explicit TransformerEncoder(const TransformerConfig& config);

  /// Returns contextual embeddings [B*T, D].
  nn::Tensor forward(const Batch& batch, bool train = false) const;

  /// An empty cache sized for this encoder (capacity = max_seq_len).
  KvCache make_cache() const;

  /// Feeds one token at position `cache.length` and returns its contextual
  /// embedding [1, D]. Requires a causal config and a cache from
  /// make_cache(). The result is bit-identical to the last row of
  /// forward() over the same prefix, at O(T) cost per step instead of
  /// O(T^2). Typically run under nn::InferenceGuard; no dropout is applied
  /// (equivalent to train=false).
  nn::Tensor forward_incremental(int token_id, KvCache& cache) const;

  /// A shared paged KV block pool sized for this encoder. `num_blocks` 0
  /// means NETFM_KV_BLOCKS when set, else exactly one full sequence
  /// (ceil(max_seq_len / block_tokens)); block size comes from
  /// NETFM_KV_BLOCK (default 16 tokens).
  std::shared_ptr<KvBlockPool> make_block_pool(std::size_t num_blocks = 0) const;

  /// Blocks one max_seq_len sequence needs under the configured block size.
  std::size_t blocks_per_sequence() const noexcept;

  /// An empty paged cache drawing from `pool` (geometry must match this
  /// encoder). The no-arg overload builds a private single-sequence pool —
  /// a drop-in replacement for make_cache() that can never run out of
  /// blocks before max_seq_len.
  PagedKvCache make_paged_cache(std::shared_ptr<KvBlockPool> pool) const;
  PagedKvCache make_paged_cache() const;

  /// Paged analogue of forward_incremental(int, KvCache&): bit-identical
  /// to it (and so to the full forward) at every step. Throws
  /// ContextFullError when the session is at max_seq_len or
  /// (pool_exhausted()) the shared pool has no free block; on pool
  /// exhaustion the cache is left unmodified, so the session can retry
  /// after blocks are freed.
  nn::Tensor forward_incremental(int token_id, PagedKvCache& cache) const;

  /// One lockstep decode step across B sessions: token_ids[b] is fed to
  /// caches[b] at its current length; returns the B contextual embeddings
  /// as [B, D]. Each row is bit-identical to the serial dense route on
  /// that session alone. Blocks needed by this step are reserved up front
  /// across all sessions — on exhaustion the reservation is rolled back
  /// and ContextFullError{pool_exhausted()=true} is thrown with every
  /// cache unmodified.
  nn::Tensor forward_incremental_batch(std::span<const int> token_ids,
                                       std::span<PagedKvCache* const> caches) const;

  const TransformerConfig& config() const noexcept { return config_; }
  nn::ParameterList parameters() const;

  /// Eagerly packs all layers' int8 weight caches so the first quantized
  /// inference pays no pack cost (no-op when quant is off).
  void prequantize() const;

  /// Token embedding table [V, D] (tied into the MLM decoder).
  const nn::Tensor& token_embeddings() const noexcept {
    return token_embed_.tensor;
  }

  /// Per-layer attention maps from the last forward ([B*H, T, T] each).
  std::vector<nn::Tensor> last_attentions() const;

 private:
  TransformerConfig config_;
  mutable Rng rng_;  // dropout stream (forward-only state)
  // Attention geometry from the previous forward; its index maps are
  // reused whenever the batch shape is unchanged.
  mutable AttentionContext attn_ctx_;
  nn::Parameter token_embed_, position_embed_, segment_embed_;
  LayerNorm embed_norm_;
  std::vector<std::unique_ptr<EncoderBlock>> blocks_;
};

}  // namespace netfm::model
