#include "model/config.h"

namespace netfm::model {

TransformerConfig TransformerConfig::tiny(std::size_t vocab) {
  TransformerConfig c;
  c.vocab_size = vocab;
  c.d_model = 32;
  c.num_heads = 2;
  c.num_layers = 2;
  c.d_ffn = 64;
  c.max_seq_len = 64;
  return c;
}

TransformerConfig TransformerConfig::small(std::size_t vocab) {
  TransformerConfig c;
  c.vocab_size = vocab;
  c.d_model = 64;
  c.num_heads = 4;
  c.num_layers = 3;
  c.d_ffn = 128;
  c.max_seq_len = 96;
  return c;
}

TransformerConfig TransformerConfig::base(std::size_t vocab) {
  TransformerConfig c;
  c.vocab_size = vocab;
  c.d_model = 128;
  c.num_heads = 4;
  c.num_layers = 4;
  c.d_ffn = 256;
  c.max_seq_len = 128;
  return c;
}

std::size_t parameter_count(const TransformerConfig& c) noexcept {
  const std::size_t embeddings =
      (c.vocab_size + c.max_seq_len + c.num_segments) * c.d_model +
      2 * c.d_model;  // embed layernorm
  const std::size_t per_layer =
      4 * (c.d_model * c.d_model + c.d_model)      // qkv + output proj
      + 2 * (c.d_model * c.d_ffn) + c.d_ffn + c.d_model  // ffn
      + 4 * c.d_model;                             // two layernorms
  return embeddings + c.num_layers * per_layer;
}

}  // namespace netfm::model
