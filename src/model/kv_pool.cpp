#include "model/kv_pool.h"

#include <atomic>
#include <cstdlib>
#include <mutex>

#include "common/metrics.h"

namespace netfm::model {

namespace {

std::size_t env_size(const char* name, std::size_t fallback) noexcept {
  if (const char* env = std::getenv(name)) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0') return static_cast<std::size_t>(v);
  }
  return fallback;
}

// Reserved KV bytes across every live pool in the process, mirrored into
// the infer.kv_bytes gauge so memory is a tracked trajectory.
std::atomic<std::size_t> g_reserved_bytes{0};

void publish_reserved_bytes(std::size_t delta, bool add) noexcept {
  static const auto g_kv_bytes = metrics::gauge("infer.kv_bytes", "byte");
  const std::size_t now =
      add ? g_reserved_bytes.fetch_add(delta) + delta
          : g_reserved_bytes.fetch_sub(delta) - delta;
  g_kv_bytes.set(static_cast<double>(now));
}

}  // namespace

std::size_t default_kv_block_tokens() noexcept {
  static const std::size_t value = [] {
    const std::size_t v = env_size("NETFM_KV_BLOCK", 16);
    return v == 0 ? std::size_t{16} : v;
  }();
  return value;
}

std::size_t default_kv_pool_blocks() noexcept {
  static const std::size_t value = env_size("NETFM_KV_BLOCKS", 0);
  return value;
}

struct KvBlockPool::State {
  mutable std::mutex mutex;
  std::vector<std::uint32_t> free_list;
  std::size_t in_use = 0;
  std::size_t peak_in_use = 0;
};

KvBlockPool::KvBlockPool(std::size_t layers, std::size_t heads,
                         std::size_t head_dim, std::size_t block_tokens,
                         std::size_t num_blocks)
    : layers_(layers),
      heads_(heads),
      head_dim_(head_dim),
      block_tokens_(block_tokens),
      num_blocks_(num_blocks),
      state_(std::make_unique<State>()) {
  if (layers == 0 || heads == 0 || head_dim == 0 || block_tokens == 0 ||
      num_blocks == 0)
    throw std::invalid_argument("KvBlockPool: all dimensions must be > 0");
  const std::size_t per_layer = num_blocks_ * heads_ * block_tokens_ * head_dim_;
  keys_.resize(layers_);
  values_.resize(layers_);
  for (std::size_t l = 0; l < layers_; ++l) {
    keys_[l].resize(per_layer);
    values_[l].resize(per_layer);
  }
  // Free list popped from the back: blocks are handed out in ascending
  // order from a fresh pool, which keeps early allocations cache-adjacent.
  state_->free_list.reserve(num_blocks_);
  for (std::size_t b = num_blocks_; b > 0; --b)
    state_->free_list.push_back(static_cast<std::uint32_t>(b - 1));
  publish_reserved_bytes(num_blocks_ * bytes_per_block(), /*add=*/true);
}

KvBlockPool::~KvBlockPool() {
  publish_reserved_bytes(num_blocks_ * bytes_per_block(), /*add=*/false);
}

bool KvBlockPool::try_alloc(std::uint32_t* block) {
  const std::lock_guard<std::mutex> lock(state_->mutex);
  if (state_->free_list.empty()) return false;
  *block = state_->free_list.back();
  state_->free_list.pop_back();
  ++state_->in_use;
  if (state_->in_use > state_->peak_in_use) state_->peak_in_use = state_->in_use;
  return true;
}

void KvBlockPool::free_block(std::uint32_t block) noexcept {
  const std::lock_guard<std::mutex> lock(state_->mutex);
  state_->free_list.push_back(block);
  --state_->in_use;
}

std::size_t KvBlockPool::blocks_in_use() const noexcept {
  const std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->in_use;
}

std::size_t KvBlockPool::free_blocks() const noexcept {
  const std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->free_list.size();
}

std::size_t KvBlockPool::peak_blocks_in_use() const noexcept {
  const std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->peak_in_use;
}

}  // namespace netfm::model
