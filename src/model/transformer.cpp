#include "model/transformer.h"

#include <cmath>
#include <stdexcept>

#include "common/metrics.h"
#include "nn/kernels/kernels.h"
#include "nn/workspace.h"

namespace netfm::model {

using nn::Tensor;

Batch Batch::single(std::span<const int> ids) {
  Batch b;
  b.batch_size = 1;
  b.seq_len = ids.size();
  b.token_ids.assign(ids.begin(), ids.end());
  b.segment_ids.assign(ids.size(), 0);
  b.attention_mask.assign(ids.size(), 1.0f);
  return b;
}

Linear::Linear(std::size_t in, std::size_t out, Rng& rng,
               const std::string& name) {
  // Xavier-uniform-equivalent gaussian init.
  const float stddev = std::sqrt(2.0f / static_cast<float>(in + out));
  weight_ = {name + ".weight", Tensor::randn({in, out}, rng, stddev)};
  bias_ = {name + ".bias", Tensor({out}, true)};
}

Tensor Linear::forward(const Tensor& x) const {
  if (nn::quant::enabled() && nn::inference_mode()) {
    // Weight [in, out] row-major: element (k, j) at w[k * out + j].
    const Tensor& w = weight_.tensor;
    Tensor y = nn::quant::linear(x, w.data().data(), w.dim(0), w.dim(1),
                                 /*rs=*/w.dim(1), /*cs=*/1, quant_cache_);
    if (y.defined()) return nn::add(y, bias_.tensor);
    // Undefined = the layer declined to quantize; take the fp32 route.
  }
  return nn::add(nn::matmul(x, weight_.tensor), bias_.tensor);
}

void Linear::collect(nn::ParameterList& out) const {
  out.push_back(weight_);
  out.push_back(bias_);
}

void Linear::prequantize() const {
  const Tensor& w = weight_.tensor;
  if (!w.defined()) return;
  nn::quant::prepack(w.data().data(), w.dim(0), w.dim(1), /*rs=*/w.dim(1),
                     /*cs=*/1, quant_cache_);
}

LayerNorm::LayerNorm(std::size_t dim, const std::string& name) {
  gain_ = {name + ".gain", Tensor::full({dim}, 1.0f)};
  gain_.tensor.set_requires_grad(true);
  bias_ = {name + ".bias", Tensor({dim}, true)};
}

Tensor LayerNorm::forward(const Tensor& x) const {
  return nn::layer_norm(x, gain_.tensor, bias_.tensor);
}

void LayerNorm::collect(nn::ParameterList& out) const {
  out.push_back(gain_);
  out.push_back(bias_);
}

EncoderBlock::EncoderBlock(const TransformerConfig& config, Rng& rng,
                           const std::string& prefix)
    : config_(&config),
      query_(config.d_model, config.d_model, rng, prefix + ".q"),
      key_(config.d_model, config.d_model, rng, prefix + ".k"),
      value_(config.d_model, config.d_model, rng, prefix + ".v"),
      output_(config.d_model, config.d_model, rng, prefix + ".o"),
      ffn_in_(config.d_model, config.d_ffn, rng, prefix + ".ffn_in"),
      ffn_out_(config.d_ffn, config.d_model, rng, prefix + ".ffn_out"),
      norm_attn_(config.d_model, prefix + ".norm_attn"),
      norm_ffn_(config.d_model, prefix + ".norm_ffn") {}

bool AttentionContext::same_geometry(
    const Batch& batch, const TransformerConfig& config) const noexcept {
  return split && merge && batch_size == batch.batch_size &&
         seq_len == batch.seq_len && heads == config.num_heads &&
         head_dim == config.head_dim();
}

AttentionContext AttentionContext::build(const Batch& batch,
                                         const TransformerConfig& config,
                                         const AttentionContext* previous) {
  AttentionContext ctx;
  ctx.batch_size = batch.batch_size;
  ctx.seq_len = batch.seq_len;
  ctx.heads = config.num_heads;
  ctx.head_dim = config.head_dim();
  const std::size_t bsz = ctx.batch_size, seq = ctx.seq_len;
  const std::size_t heads = ctx.heads, head_dim = ctx.head_dim;
  ctx.headed = nn::Shape{bsz * heads, seq, head_dim};

  if (previous && previous->same_geometry(batch, config)) {
    // Index maps between [B*T, D] and [B*H, T, dk] depend only on the
    // geometry — reuse them across forwards.
    ctx.split = previous->split;
    ctx.merge = previous->merge;
  } else {
    const std::size_t d_model = heads * head_dim;
    auto split =
        std::make_shared<std::vector<std::size_t>>(bsz * seq * d_model);
    auto merge =
        std::make_shared<std::vector<std::size_t>>(bsz * seq * d_model);
    for (std::size_t b = 0; b < bsz; ++b)
      for (std::size_t h = 0; h < heads; ++h)
        for (std::size_t t = 0; t < seq; ++t)
          for (std::size_t k = 0; k < head_dim; ++k) {
            const std::size_t flat =
                (b * seq + t) * d_model + h * head_dim + k;
            const std::size_t headed =
                ((b * heads + h) * seq + t) * head_dim + k;
            (*split)[headed] = flat;
            (*merge)[flat] = headed;
          }
    ctx.split = std::move(split);
    ctx.merge = std::move(merge);
  }

  // Key-padding (and optionally causal) mask for score tensor [B*H, T, T]:
  // element (bh, i, j) is valid iff token j of sequence b is real and, in
  // causal mode, j <= i. Depends on the batch contents, so rebuilt per
  // forward — but only once, not once per layer.
  auto mask = std::make_shared<std::vector<float>>(bsz * heads * seq * seq);
  std::size_t at = 0;
  for (std::size_t b = 0; b < bsz; ++b)
    for (std::size_t h = 0; h < heads; ++h)
      for (std::size_t i = 0; i < seq; ++i)
        for (std::size_t j = 0; j < seq; ++j)
          (*mask)[at++] = (config.causal && j > i)
                              ? 0.0f
                              : batch.attention_mask[b * seq + j];
  ctx.score_mask = std::move(mask);
  return ctx;
}

Tensor EncoderBlock::forward(const Tensor& x, const AttentionContext& ctx,
                             bool train, Rng& rng) const {
  const TransformerConfig& cfg = *config_;

  const Tensor q = nn::remap(query_.forward(x), ctx.headed, ctx.split);
  const Tensor k = nn::remap(key_.forward(x), ctx.headed, ctx.split);
  const Tensor v = nn::remap(value_.forward(x), ctx.headed, ctx.split);

  const float inv_sqrt_dk =
      1.0f / std::sqrt(static_cast<float>(ctx.head_dim));
  Tensor attn;
  if (nn::inference_mode()) {
    // Fused scores+scale+mask+softmax: one pass, one buffer, no packed
    // GEMM or transposed copy of k — bit-identical to the composed route
    // below. The probabilities are still materialized so interpretability
    // (last_attentions / attention rollout) sees the same maps.
    attn = nn::attention_scores(q, k, ctx.score_mask, inv_sqrt_dk, -1e9f);
  } else {
    Tensor scores = nn::matmul(q, nn::transpose(k));
    scores = nn::scale(scores, inv_sqrt_dk);
    scores = nn::masked_fill(scores, ctx.score_mask, -1e9f);
    attn = nn::softmax(scores);
  }
  last_attention_ = attn;
  attn = nn::dropout(attn, cfg.dropout, train, rng);

  const Tensor context = nn::inference_mode() ? nn::attention_apply(attn, v)
                                              : nn::matmul(attn, v);
  const Tensor merged = nn::remap(
      context, {ctx.batch_size * ctx.seq_len, cfg.d_model}, ctx.merge);
  Tensor attended = output_.forward(merged);
  attended = nn::dropout(attended, cfg.dropout, train, rng);
  const Tensor x1 = norm_attn_.forward(nn::add(x, attended));

  Tensor ffn = ffn_out_.forward(nn::gelu(ffn_in_.forward(x1)));
  ffn = nn::dropout(ffn, cfg.dropout, train, rng);
  return norm_ffn_.forward(nn::add(x1, ffn));
}

Tensor EncoderBlock::forward_incremental(const Tensor& x, KvCache& cache,
                                         std::size_t layer) const {
  // Bitwise equivalence with the batched forward rests on three facts:
  //  - Linear/LayerNorm/GELU rows are computed independently of how many
  //    rows share the tensor, and the GEMM reduces K in a fixed serial
  //    order per output element regardless of blocking — so projecting
  //    just this token's row reproduces the full forward's row exactly.
  //  - The manual dot/accumulate loops below reduce over the same index
  //    ranges in the same order as the batched matmuls.
  //  - In the full forward, causally masked score entries are set to
  //    -1e9f, underflow to exactly 0.0f in exp(), and contribute +0.0f to
  //    every sum — so attending over only the [0, t] prefix is
  //    bit-identical to the masked full-row softmax.
  const TransformerConfig& cfg = *config_;
  const std::size_t heads = cfg.num_heads;
  const std::size_t dk = cfg.head_dim();
  const std::size_t cap = cache.capacity;
  const std::size_t t = cache.length;  // position of this token

  const Tensor q = query_.forward(x);  // [1, D]
  const Tensor k = key_.forward(x);
  const Tensor v = value_.forward(x);

  // Append this token's K/V rows (head h lives at columns [h*dk, h*dk+dk)).
  float* kc = cache.keys[layer].data();
  float* vc = cache.values[layer].data();
  const float* kp = k.data().data();
  const float* vp = v.data().data();
  for (std::size_t h = 0; h < heads; ++h) {
    std::copy_n(kp + h * dk, dk, kc + (h * cap + t) * dk);
    std::copy_n(vp + h * dk, dk, vc + (h * cap + t) * dk);
  }

  Tensor context = Tensor::empty({1, heads * dk});
  float* op = context.data().data();
  const float* qp = q.data().data();
  const float scale = 1.0f / std::sqrt(static_cast<float>(dk));
  std::span<float> s = nn::Workspace::current().scratch(t + 1);
  for (std::size_t h = 0; h < heads; ++h) {
    const float* qh = qp + h * dk;
    const float* kh = kc + h * cap * dk;
    const float* vh = vc + h * cap * dk;
    // Scaled scores over the cached prefix (same reduction order and the
    // same multiply-after-dot as matmul + nn::scale).
    for (std::size_t j = 0; j <= t; ++j) {
      float dot = 0.0f;
      const float* krow = kh + j * dk;
      for (std::size_t c = 0; c < dk; ++c) dot += qh[c] * krow[c];
      s[j] = dot * scale;
    }
    // Softmax over [0, t] — the identical row loop from nn::softmax.
    float maxv = s[0];
    for (std::size_t j = 1; j <= t; ++j) maxv = std::max(maxv, s[j]);
    float total = 0.0f;
    for (std::size_t j = 0; j <= t; ++j) {
      s[j] = std::exp(s[j] - maxv);
      total += s[j];
    }
    for (std::size_t j = 0; j <= t; ++j) s[j] /= total;
    // context = attn · V, accumulated in cache order (matmul's K order) on
    // the dispatched kernel backend — same per-element reduction order on
    // every backend, so this stays bit-identical to the batched forward.
    nn::kernels::table().weighted_sum(s.data(), vh, t + 1, dk, op + h * dk);
  }

  const Tensor attended = output_.forward(context);
  const Tensor x1 = norm_attn_.forward(nn::add(x, attended));
  const Tensor ffn = ffn_out_.forward(nn::gelu(ffn_in_.forward(x1)));
  return norm_ffn_.forward(nn::add(x1, ffn));
}

Tensor EncoderBlock::forward_incremental_batch(
    const Tensor& x, std::span<PagedKvCache* const> caches,
    std::size_t layer) const {
  // Row b of this step is bit-identical to forward_incremental on session
  // b alone: Linear/LayerNorm/GELU (and the int8 quant GEMM, which
  // quantizes activations per row) compute each row independently of how
  // many rows share the tensor, and the per-(b, h) attention loops below
  // are the dense route's loops with the j-th K/V row looked up through
  // the block table instead of a dense buffer — same indices, same order,
  // same arithmetic.
  const TransformerConfig& cfg = *config_;
  const std::size_t heads = cfg.num_heads;
  const std::size_t dk = cfg.head_dim();
  const std::size_t d_model = cfg.d_model;
  const std::size_t bsz = caches.size();

  const Tensor q = query_.forward(x);  // [B, D]
  const Tensor k = key_.forward(x);
  const Tensor v = value_.forward(x);

  // Append each session's K/V rows into its current block.
  const float* kp = k.data().data();
  const float* vp = v.data().data();
  for (std::size_t b = 0; b < bsz; ++b) {
    PagedKvCache& cache = *caches[b];
    KvBlockPool& pool = *cache.pool;
    const std::size_t bt = pool.block_tokens();
    const std::size_t t = cache.length;
    const std::uint32_t blk = cache.blocks[t / bt];
    const std::size_t off = (t % bt) * dk;
    for (std::size_t h = 0; h < heads; ++h) {
      std::copy_n(kp + b * d_model + h * dk, dk,
                  pool.key_head(layer, blk, h) + off);
      std::copy_n(vp + b * d_model + h * dk, dk,
                  pool.value_head(layer, blk, h) + off);
    }
  }

  Tensor context = Tensor::empty({bsz, heads * dk});
  float* op = context.data().data();
  const float* qp = q.data().data();
  const float scale = 1.0f / std::sqrt(static_cast<float>(dk));
  std::size_t max_t = 0;
  for (const PagedKvCache* cache : caches)
    max_t = std::max(max_t, cache->length);
  std::span<float> s = nn::Workspace::current().scratch(max_t + 1);
  const nn::kernels::KernelTable& kt = nn::kernels::table();
  std::vector<const float*> runs;
  for (std::size_t b = 0; b < bsz; ++b) {
    const PagedKvCache& cache = *caches[b];
    const KvBlockPool& pool = *cache.pool;
    const std::size_t bt = pool.block_tokens();
    const std::size_t t = cache.length;
    const std::size_t n_runs = kv_blocks_for(t + 1, bt);
    for (std::size_t h = 0; h < heads; ++h) {
      const float* qh = qp + b * d_model + h * dk;
      // Scaled scores over the cached prefix, walked through the block
      // table (same reduction order and multiply-after-dot as the dense
      // route).
      for (std::size_t j = 0; j <= t; ++j) {
        float dot = 0.0f;
        const float* krow =
            pool.key_head(layer, cache.blocks[j / bt], h) + (j % bt) * dk;
        for (std::size_t c = 0; c < dk; ++c) dot += qh[c] * krow[c];
        s[j] = dot * scale;
      }
      // Softmax over [0, t] — the identical row loop from nn::softmax.
      float maxv = s[0];
      for (std::size_t j = 1; j <= t; ++j) maxv = std::max(maxv, s[j]);
      float total = 0.0f;
      for (std::size_t j = 0; j <= t; ++j) {
        s[j] = std::exp(s[j] - maxv);
        total += s[j];
      }
      for (std::size_t j = 0; j <= t; ++j) s[j] /= total;
      // context = attn · V accumulated run-by-run across the block table
      // on the dispatched backend — bit-identical to one contiguous
      // weighted_sum (see paged_weighted_sum).
      runs.clear();
      for (std::size_t r = 0; r < n_runs; ++r)
        runs.push_back(pool.value_head(layer, cache.blocks[r], h));
      nn::kernels::paged_weighted_sum(kt, s.data(), runs.data(), n_runs, bt,
                                      t + 1, dk, op + b * heads * dk + h * dk);
    }
  }

  const Tensor attended = output_.forward(context);
  const Tensor x1 = norm_attn_.forward(nn::add(x, attended));
  const Tensor ffn = ffn_out_.forward(nn::gelu(ffn_in_.forward(x1)));
  return norm_ffn_.forward(nn::add(x1, ffn));
}

void EncoderBlock::collect(nn::ParameterList& out) const {
  query_.collect(out);
  key_.collect(out);
  value_.collect(out);
  output_.collect(out);
  ffn_in_.collect(out);
  ffn_out_.collect(out);
  norm_attn_.collect(out);
  norm_ffn_.collect(out);
}

void EncoderBlock::prequantize() const {
  query_.prequantize();
  key_.prequantize();
  value_.prequantize();
  output_.prequantize();
  ffn_in_.prequantize();
  ffn_out_.prequantize();
}

TransformerEncoder::TransformerEncoder(const TransformerConfig& config)
    : config_(config), rng_(config.seed) {
  Rng init_rng(config.seed);
  const float stddev = 0.02f;
  token_embed_ = {"embed.token",
                  Tensor::randn({config.vocab_size, config.d_model}, init_rng,
                                stddev)};
  position_embed_ = {"embed.position",
                     Tensor::randn({config.max_seq_len, config.d_model},
                                   init_rng, stddev)};
  segment_embed_ = {"embed.segment",
                    Tensor::randn({config.num_segments, config.d_model},
                                  init_rng, stddev)};
  embed_norm_ = LayerNorm(config.d_model, "embed.norm");
  for (std::size_t layer = 0; layer < config.num_layers; ++layer)
    blocks_.push_back(std::make_unique<EncoderBlock>(
        config_, init_rng, "layer" + std::to_string(layer)));
}

Tensor TransformerEncoder::forward(const Batch& batch, bool train) const {
  static const auto h_forward = metrics::histogram("infer.forward_ns");
  metrics::ScopedTimer forward_timer(h_forward);
  nn::Workspace::current().reset_scratch();
  if (batch.seq_len > config_.max_seq_len)
    throw std::invalid_argument("TransformerEncoder: sequence of length " +
                                std::to_string(batch.seq_len) +
                                " exceeds max_seq_len " +
                                std::to_string(config_.max_seq_len));
  std::vector<int> positions(batch.batch_size * batch.seq_len);
  for (std::size_t b = 0; b < batch.batch_size; ++b)
    for (std::size_t t = 0; t < batch.seq_len; ++t)
      positions[b * batch.seq_len + t] = static_cast<int>(t);

  Tensor x = nn::embedding(token_embed_.tensor, batch.token_ids);
  x = nn::add(x, nn::embedding(position_embed_.tensor, positions));
  x = nn::add(x, nn::embedding(segment_embed_.tensor, batch.segment_ids));
  x = embed_norm_.forward(x);
  x = nn::dropout(x, config_.dropout, train, rng_);

  // One attention context per forward, shared by all layers (head maps are
  // additionally reused from the previous forward when shapes repeat).
  attn_ctx_ = AttentionContext::build(batch, config_, &attn_ctx_);
  for (const auto& block : blocks_)
    x = block->forward(x, attn_ctx_, train, rng_);
  return x;
}

KvCache TransformerEncoder::make_cache() const {
  KvCache cache;
  cache.layers = config_.num_layers;
  cache.heads = config_.num_heads;
  cache.head_dim = config_.head_dim();
  cache.capacity = config_.max_seq_len;
  const std::size_t per_layer = cache.heads * cache.capacity * cache.head_dim;
  cache.keys.resize(cache.layers);
  cache.values.resize(cache.layers);
  for (std::size_t i = 0; i < cache.layers; ++i) {
    cache.keys[i].resize(per_layer);
    cache.values[i].resize(per_layer);
  }
  return cache;
}

Tensor TransformerEncoder::forward_incremental(int token_id,
                                               KvCache& cache) const {
  static const auto h_forward = metrics::histogram("infer.forward_ns");
  static const auto c_kv_hits =
      metrics::counter("infer.kv_hit_tokens", "token");
  metrics::ScopedTimer forward_timer(h_forward);
  nn::Workspace::current().reset_scratch();
  if (!config_.causal)
    throw std::invalid_argument(
        "forward_incremental: requires a causal config (later tokens must "
        "not change earlier rows)");
  if (cache.layers != config_.num_layers || cache.heads != config_.num_heads ||
      cache.head_dim != config_.head_dim() ||
      cache.capacity != config_.max_seq_len)
    throw std::invalid_argument(
        "forward_incremental: cache geometry mismatch (use make_cache())");
  if (cache.length >= cache.capacity)
    throw std::invalid_argument("forward_incremental: cache full");

  const int position = static_cast<int>(cache.length);
  c_kv_hits.add(cache.length);  // prefix tokens served from cache, not recomputed
  const int ids[1] = {token_id};
  const int positions[1] = {position};
  const int segments[1] = {0};
  Tensor x = nn::embedding(token_embed_.tensor, ids);
  x = nn::add(x, nn::embedding(position_embed_.tensor, positions));
  x = nn::add(x, nn::embedding(segment_embed_.tensor, segments));
  x = embed_norm_.forward(x);
  // No dropout: incremental decode is inference-only (train=false).
  for (std::size_t layer = 0; layer < blocks_.size(); ++layer)
    x = blocks_[layer]->forward_incremental(x, cache, layer);
  ++cache.length;
  return x;
}

std::size_t TransformerEncoder::blocks_per_sequence() const noexcept {
  return kv_blocks_for(config_.max_seq_len, default_kv_block_tokens());
}

std::shared_ptr<KvBlockPool> TransformerEncoder::make_block_pool(
    std::size_t num_blocks) const {
  if (num_blocks == 0) num_blocks = default_kv_pool_blocks();
  if (num_blocks == 0) num_blocks = blocks_per_sequence();
  return std::make_shared<KvBlockPool>(config_.num_layers, config_.num_heads,
                                       config_.head_dim(),
                                       default_kv_block_tokens(), num_blocks);
}

PagedKvCache TransformerEncoder::make_paged_cache(
    std::shared_ptr<KvBlockPool> pool) const {
  if (!pool)
    throw std::invalid_argument("make_paged_cache: null pool");
  if (pool->layers() != config_.num_layers ||
      pool->heads() != config_.num_heads ||
      pool->head_dim() != config_.head_dim())
    throw std::invalid_argument(
        "make_paged_cache: pool geometry mismatch (use make_block_pool())");
  return PagedKvCache(std::move(pool), config_.max_seq_len);
}

PagedKvCache TransformerEncoder::make_paged_cache() const {
  // A private pool sized for exactly one full sequence (independent of the
  // NETFM_KV_BLOCKS shared-pool override): the session can always decode
  // to max_seq_len, matching the dense make_cache() contract.
  return make_paged_cache(std::make_shared<KvBlockPool>(
      config_.num_layers, config_.num_heads, config_.head_dim(),
      default_kv_block_tokens(), blocks_per_sequence()));
}

Tensor TransformerEncoder::forward_incremental(int token_id,
                                               PagedKvCache& cache) const {
  PagedKvCache* caches[1] = {&cache};
  const int ids[1] = {token_id};
  return forward_incremental_batch(ids, caches);
}

Tensor TransformerEncoder::forward_incremental_batch(
    std::span<const int> token_ids,
    std::span<PagedKvCache* const> caches) const {
  static const auto h_forward = metrics::histogram("infer.forward_ns");
  static const auto c_kv_hits =
      metrics::counter("infer.kv_hit_tokens", "token");
  metrics::ScopedTimer forward_timer(h_forward);
  nn::Workspace::current().reset_scratch();
  if (!config_.causal)
    throw std::invalid_argument(
        "forward_incremental: requires a causal config (later tokens must "
        "not change earlier rows)");
  if (token_ids.size() != caches.size() || caches.empty())
    throw std::invalid_argument(
        "forward_incremental_batch: need one token per cache (and at least "
        "one session)");
  for (std::size_t b = 0; b < caches.size(); ++b) {
    PagedKvCache* cache = caches[b];
    if (cache == nullptr || !cache->pool)
      throw std::invalid_argument(
          "forward_incremental: cache has no pool (use make_paged_cache())");
    const KvBlockPool& pool = *cache->pool;
    if (pool.layers() != config_.num_layers ||
        pool.heads() != config_.num_heads ||
        pool.head_dim() != config_.head_dim() ||
        cache->capacity != config_.max_seq_len)
      throw std::invalid_argument(
          "forward_incremental: cache geometry mismatch (use "
          "make_paged_cache())");
    if (cache->length >= cache->capacity)
      throw ContextFullError("forward_incremental: cache full");
    for (std::size_t o = 0; o < b; ++o)
      if (caches[o] == cache)
        throw std::invalid_argument(
            "forward_incremental_batch: duplicate cache in batch");
  }

  // Reserve this step's blocks across all sessions, all-or-nothing: on
  // exhaustion the partial reservation is rolled back and no cache has
  // been touched, so every session can retry after blocks are freed.
  std::vector<std::size_t> grew;
  bool exhausted = false;
  for (std::size_t b = 0; b < caches.size() && !exhausted; ++b) {
    PagedKvCache& cache = *caches[b];
    const std::size_t need =
        kv_blocks_for(cache.length + 1, cache.pool->block_tokens());
    while (cache.blocks.size() < need) {
      std::uint32_t blk = 0;
      if (!cache.pool->try_alloc(&blk)) {
        exhausted = true;
        break;
      }
      cache.blocks.push_back(blk);
      grew.push_back(b);
    }
  }
  if (exhausted) {
    for (const std::size_t b : grew) {
      caches[b]->pool->free_block(caches[b]->blocks.back());
      caches[b]->blocks.pop_back();
    }
    throw ContextFullError(
        "forward_incremental_batch: KV block pool exhausted",
        /*pool_exhausted=*/true);
  }

  const std::size_t bsz = caches.size();
  std::vector<int> ids(token_ids.begin(), token_ids.end());
  std::vector<int> positions(bsz);
  std::vector<int> segments(bsz, 0);
  std::uint64_t cached = 0;
  for (std::size_t b = 0; b < bsz; ++b) {
    positions[b] = static_cast<int>(caches[b]->length);
    cached += caches[b]->length;
  }
  c_kv_hits.add(cached);  // prefix tokens served from cache, not recomputed
  Tensor x = nn::embedding(token_embed_.tensor, ids);
  x = nn::add(x, nn::embedding(position_embed_.tensor, positions));
  x = nn::add(x, nn::embedding(segment_embed_.tensor, segments));
  x = embed_norm_.forward(x);
  // No dropout: incremental decode is inference-only (train=false).
  for (std::size_t layer = 0; layer < blocks_.size(); ++layer)
    x = blocks_[layer]->forward_incremental_batch(x, caches, layer);
  for (PagedKvCache* cache : caches) ++cache->length;
  return x;
}

nn::ParameterList TransformerEncoder::parameters() const {
  nn::ParameterList out;
  out.push_back(token_embed_);
  out.push_back(position_embed_);
  out.push_back(segment_embed_);
  embed_norm_.collect(out);
  for (const auto& block : blocks_) block->collect(out);
  return out;
}

void TransformerEncoder::prequantize() const {
  for (const auto& block : blocks_) block->prequantize();
}

std::vector<Tensor> TransformerEncoder::last_attentions() const {
  std::vector<Tensor> out;
  out.reserve(blocks_.size());
  for (const auto& block : blocks_) out.push_back(block->last_attention());
  return out;
}

}  // namespace netfm::model
