#include "model/gru.h"

#include <cmath>
#include <stdexcept>

namespace netfm::model {

using nn::Tensor;

GruClassifier::GruClassifier(const GruConfig& config)
    : config_(config), rng_(config.seed) {
  Rng init(config.seed);
  const auto dense = [&](std::size_t in, std::size_t out,
                         const std::string& name) {
    const float stddev = std::sqrt(2.0f / static_cast<float>(in + out));
    return nn::Parameter{name, Tensor::randn({in, out}, init, stddev)};
  };
  embed_ = {"gru.embed",
            Tensor::randn({config.vocab_size, config.embed_dim}, init, 0.1f)};
  wz_ = dense(config.embed_dim, config.hidden_dim, "gru.wz");
  uz_ = dense(config.hidden_dim, config.hidden_dim, "gru.uz");
  bz_ = {"gru.bz", Tensor({config.hidden_dim}, true)};
  wr_ = dense(config.embed_dim, config.hidden_dim, "gru.wr");
  ur_ = dense(config.hidden_dim, config.hidden_dim, "gru.ur");
  br_ = {"gru.br", Tensor({config.hidden_dim}, true)};
  wh_ = dense(config.embed_dim, config.hidden_dim, "gru.wh");
  uh_ = dense(config.hidden_dim, config.hidden_dim, "gru.uh");
  bh_ = {"gru.bh", Tensor({config.hidden_dim}, true)};
  out_w_ = dense(config.hidden_dim, config.num_classes, "gru.out_w");
  out_b_ = {"gru.out_b", Tensor({config.num_classes}, true)};
}

void GruClassifier::load_embeddings(std::span<const float> vectors,
                                    bool freeze) {
  if (vectors.size() != config_.vocab_size * config_.embed_dim)
    throw std::invalid_argument("GruClassifier: embedding size mismatch");
  std::copy(vectors.begin(), vectors.end(), embed_.tensor.data().begin());
  freeze_embeddings_ = freeze;
  embed_.tensor.set_requires_grad(!freeze);
}

Tensor GruClassifier::forward(std::span<const int> ids, bool train) const {
  const Tensor inputs = nn::embedding(embed_.tensor, ids);  // [T, E]
  Tensor h = Tensor::zeros({1, config_.hidden_dim});

  for (std::size_t t = 0; t < ids.size(); ++t) {
    const Tensor x = nn::slice_rows(inputs, t, t + 1);  // [1, E]
    const Tensor z = nn::sigmoid(
        nn::add(nn::add(nn::matmul(x, wz_.tensor), nn::matmul(h, uz_.tensor)),
                bz_.tensor));
    const Tensor r = nn::sigmoid(
        nn::add(nn::add(nn::matmul(x, wr_.tensor), nn::matmul(h, ur_.tensor)),
                br_.tensor));
    const Tensor candidate = nn::tanh_op(nn::add(
        nn::add(nn::matmul(x, wh_.tensor),
                nn::matmul(nn::mul(r, h), uh_.tensor)),
        bh_.tensor));
    // h = (1 - z) * h + z * candidate  ==  h + z * (candidate - h)
    h = nn::add(h, nn::mul(z, nn::sub(candidate, h)));
  }
  Tensor pooled = h;
  pooled = nn::dropout(pooled, config_.dropout, train, rng_);
  return nn::add(nn::matmul(pooled, out_w_.tensor), out_b_.tensor);
}

nn::ParameterList GruClassifier::parameters() const {
  nn::ParameterList out;
  if (!freeze_embeddings_) out.push_back(embed_);
  for (const nn::Parameter* p :
       {&wz_, &uz_, &bz_, &wr_, &ur_, &br_, &wh_, &uh_, &bh_, &out_w_,
        &out_b_})
    out.push_back(*p);
  return out;
}

}  // namespace netfm::model
