#include "model/heads.h"

namespace netfm::model {

using nn::Tensor;

MlmHead::MlmHead(const TransformerConfig& config,
                 const nn::Tensor& tied_embeddings, Rng& rng)
    : transform_(config.d_model, config.d_model, rng, "mlm.transform"),
      norm_(config.d_model, "mlm.norm"),
      tied_embeddings_(tied_embeddings),
      decoder_bias_{"mlm.decoder_bias",
                    Tensor({config.vocab_size}, true)} {}

Tensor MlmHead::forward(const Tensor& hidden) const {
  const Tensor transformed =
      norm_.forward(nn::gelu(transform_.forward(hidden)));
  // Tied decoder: logits = transformed * E^T + bias.
  if (nn::quant::enabled() && nn::inference_mode()) {
    // E is [V, D]; decoder column v is E row v, so (k, j) -> e[j * D + k]
    // (rs = 1, cs = D) quantizes the tied weights without a transpose copy.
    const Tensor& e = tied_embeddings_;
    Tensor y = nn::quant::linear(transformed, e.data().data(), /*K=*/e.dim(1),
                                 /*N=*/e.dim(0), /*rs=*/1, /*cs=*/e.dim(1),
                                 decoder_cache_);
    if (y.defined()) return nn::add(y, decoder_bias_.tensor);
  }
  return nn::add(nn::matmul(transformed, nn::transpose(tied_embeddings_)),
                 decoder_bias_.tensor);
}

void MlmHead::prequantize() const {
  transform_.prequantize();
  if (!tied_embeddings_.defined()) return;
  const Tensor& e = tied_embeddings_;
  nn::quant::prepack(e.data().data(), /*K=*/e.dim(1), /*N=*/e.dim(0),
                     /*rs=*/1, /*cs=*/e.dim(1), decoder_cache_);
}

void MlmHead::collect(nn::ParameterList& out) const {
  transform_.collect(out);
  norm_.collect(out);
  out.push_back(decoder_bias_);
}

Pooler::Pooler(std::size_t d_model, Rng& rng)
    : dense_(d_model, d_model, rng, "pooler.dense") {}

Tensor Pooler::forward(const Tensor& hidden, std::size_t batch_size,
                       std::size_t seq_len) const {
  // Gather row 0 of every sequence.
  auto map = std::make_shared<std::vector<std::size_t>>();
  const std::size_t d_model = hidden.dim(1);
  map->resize(batch_size * d_model);
  for (std::size_t b = 0; b < batch_size; ++b)
    for (std::size_t d = 0; d < d_model; ++d)
      (*map)[b * d_model + d] = b * seq_len * d_model + d;
  const Tensor cls = nn::remap(hidden, {batch_size, d_model}, map);
  return nn::tanh_op(dense_.forward(cls));
}

void Pooler::collect(nn::ParameterList& out) const { dense_.collect(out); }

ClassificationHead::ClassificationHead(std::size_t d_model,
                                       std::size_t num_classes, Rng& rng)
    : dense_(d_model, num_classes, rng, "cls.dense"),
      num_classes_(num_classes) {}

Tensor ClassificationHead::forward(const Tensor& pooled) const {
  return dense_.forward(pooled);
}

void ClassificationHead::collect(nn::ParameterList& out) const {
  dense_.collect(out);
}

RegressionHead::RegressionHead(std::size_t d_model, Rng& rng)
    : hidden_(d_model, d_model, rng, "reg.hidden"),
      out_(d_model, 1, rng, "reg.out") {}

Tensor RegressionHead::forward(const Tensor& pooled) const {
  return out_.forward(nn::gelu(hidden_.forward(pooled)));
}

void RegressionHead::collect(nn::ParameterList& out) const {
  hidden_.collect(out);
  out_.collect(out);
}

NextSegmentHead::NextSegmentHead(std::size_t d_model, Rng& rng)
    : dense_(d_model, 2, rng, "nsp.dense") {}

Tensor NextSegmentHead::forward(const Tensor& pooled) const {
  return dense_.forward(pooled);
}

void NextSegmentHead::collect(nn::ParameterList& out) const {
  dense_.collect(out);
}

}  // namespace netfm::model
