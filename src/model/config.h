// Model hyperparameter presets. The "tiny/small/base" ladder is the
// model-size axis of the energy/scaling experiment (E10); tiny is the
// default everywhere else so the full evaluation runs on one CPU core.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace netfm::model {

struct TransformerConfig {
  std::size_t vocab_size = 512;
  std::size_t d_model = 32;
  std::size_t num_heads = 2;
  std::size_t num_layers = 2;
  std::size_t d_ffn = 64;
  std::size_t max_seq_len = 64;
  std::size_t num_segments = 2;  // segment (packet A/B) embedding table
  float dropout = 0.1f;
  /// Lower-triangular (autoregressive) attention. Off = BERT-style
  /// bidirectional encoder; on = GPT-style causal LM (TrafficLM).
  bool causal = false;
  std::uint64_t seed = 1234;

  std::size_t head_dim() const noexcept { return d_model / num_heads; }

  static TransformerConfig tiny(std::size_t vocab);
  static TransformerConfig small(std::size_t vocab);
  static TransformerConfig base(std::size_t vocab);
};

struct GruConfig {
  std::size_t vocab_size = 512;
  std::size_t embed_dim = 32;
  std::size_t hidden_dim = 48;
  std::size_t num_classes = 2;
  float dropout = 0.1f;
  std::uint64_t seed = 4321;
};

/// Approximate trainable parameter count (for the E10 table).
std::size_t parameter_count(const TransformerConfig& config) noexcept;

}  // namespace netfm::model
