// Task heads that sit on top of the encoder's [B*T, D] output:
// masked-token prediction (pretraining), next-segment prediction
// (pretraining), sequence classification / regression (fine-tuning).
#pragma once

#include "model/transformer.h"

namespace netfm::model {

/// Masked-token modeling head: transform + decode over the vocabulary.
/// The decoder weight is tied to the encoder token embedding.
class MlmHead {
 public:
  MlmHead(const TransformerConfig& config, const nn::Tensor& tied_embeddings,
          Rng& rng);

  /// hidden [B*T, D] -> logits [B*T, V]. In inference mode with
  /// NETFM_QUANT on, the tied decoder runs on the int8 quantized GEMM
  /// (per-vocab-row scales, no transposed weight copy).
  nn::Tensor forward(const nn::Tensor& hidden) const;
  void collect(nn::ParameterList& out) const;

  /// Eagerly packs the transform + tied-decoder int8 caches (no-op when
  /// quant is off).
  void prequantize() const;

 private:
  Linear transform_;
  LayerNorm norm_;
  nn::Tensor tied_embeddings_;  // [V, D]
  nn::Parameter decoder_bias_;  // [V]
  mutable nn::quant::PackedWeights decoder_cache_;
};

/// Pools the first token ([CLS]) of each sequence: [B*T, D] -> [B, D],
/// tanh-squashed through a learned projection (the BERT pooler).
class Pooler {
 public:
  Pooler(std::size_t d_model, Rng& rng);

  nn::Tensor forward(const nn::Tensor& hidden, std::size_t batch_size,
                     std::size_t seq_len) const;
  void collect(nn::ParameterList& out) const;
  void prequantize() const { dense_.prequantize(); }

 private:
  Linear dense_;
};

/// Linear classifier over pooled output: [B, D] -> [B, num_classes].
class ClassificationHead {
 public:
  ClassificationHead(std::size_t d_model, std::size_t num_classes, Rng& rng);

  nn::Tensor forward(const nn::Tensor& pooled) const;
  void collect(nn::ParameterList& out) const;
  std::size_t num_classes() const noexcept { return num_classes_; }
  void prequantize() const { dense_.prequantize(); }

 private:
  Linear dense_;
  std::size_t num_classes_;
};

/// Scalar regression over pooled output: [B, D] -> [B, 1].
class RegressionHead {
 public:
  RegressionHead(std::size_t d_model, Rng& rng);

  nn::Tensor forward(const nn::Tensor& pooled) const;
  void collect(nn::ParameterList& out) const;
  void prequantize() const {
    hidden_.prequantize();
    out_.prequantize();
  }

 private:
  Linear hidden_, out_;
};

/// Binary next-segment prediction over pooled output (the NSP analogue:
/// "is segment B the packet that actually followed segment A?").
class NextSegmentHead {
 public:
  NextSegmentHead(std::size_t d_model, Rng& rng);

  nn::Tensor forward(const nn::Tensor& pooled) const;
  void collect(nn::ParameterList& out) const;
  void prequantize() const { dense_.prequantize(); }

 private:
  Linear dense_;
};

}  // namespace netfm::model
