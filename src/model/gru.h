// GRU sequence classifier — the supervised baseline of experiment E1
// (NorBERT's comparison): embedding -> single GRU layer -> last hidden ->
// linear classifier. The embedding is either random-initialized or loaded
// from pretrained context-independent (GloVe) vectors.
#pragma once

#include "model/config.h"
#include "nn/optim.h"
#include "nn/tensor.h"

namespace netfm::model {

class GruClassifier {
 public:
  explicit GruClassifier(const GruConfig& config);

  /// Initializes the embedding table from row-major [vocab, embed_dim]
  /// vectors (the GloVe baseline); must match the config dims.
  void load_embeddings(std::span<const float> vectors, bool freeze = false);

  /// Forward for one sequence: ids (len T) -> logits [1, num_classes].
  nn::Tensor forward(std::span<const int> ids, bool train = false) const;

  nn::ParameterList parameters() const;
  const GruConfig& config() const noexcept { return config_; }

 private:
  GruConfig config_;
  mutable Rng rng_;
  nn::Parameter embed_;
  // GRU weights: update (z), reset (r), candidate (h) gates.
  nn::Parameter wz_, uz_, bz_;
  nn::Parameter wr_, ur_, br_;
  nn::Parameter wh_, uh_, bh_;
  nn::Parameter out_w_, out_b_;
  bool freeze_embeddings_ = false;
};

}  // namespace netfm::model
