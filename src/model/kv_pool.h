// Paged attention KV storage: a shared pool of fixed-size token blocks plus
// per-session block tables (vLLM-style), replacing the dense per-session
// `layers x heads x max_seq_len x head_dim` reservation of KvCache.
//
// A KvBlockPool owns, per layer, one K and one V buffer laid out as
// [num_blocks][heads][block_tokens][head_dim] — so each (block, head) is a
// contiguous run of `block_tokens` rows, exactly the row-major stride the
// dispatched weighted_sum kernels consume. Blocks are handed out from a
// mutex-protected free list; a PagedKvCache records which blocks hold its
// tokens, in token order. Many sessions share one pool, so resident KV
// memory scales with *live decoded tokens* instead of with
// sessions x max_seq_len.
//
// Thread safety: try_alloc/free_block synchronize through the pool mutex,
// which is also the handoff edge for block contents — two sessions never
// hold the same block, so concurrent decodes on distinct caches touch
// disjoint rows. The same staleness rule as KvCache applies: cached rows
// are projections of the current weights; reset() after any weight
// mutation.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "nn/tensor.h"

namespace netfm::model {

/// Thrown when an incremental decode cannot append another token: either
/// the session hit the model's max_seq_len, or (pool_exhausted()) the
/// shared block pool has no free block. Derives std::invalid_argument so
/// callers of the dense route's "cache full" contract keep working; the
/// serving layer maps pool_exhausted() to a typed `context_full` reject.
class ContextFullError : public std::invalid_argument {
 public:
  explicit ContextFullError(const std::string& what, bool pool_exhausted = false)
      : std::invalid_argument(what), pool_exhausted_(pool_exhausted) {}
  bool pool_exhausted() const noexcept { return pool_exhausted_; }

 private:
  bool pool_exhausted_;
};

/// Tokens per KV block: NETFM_KV_BLOCK, default 16. Read once.
std::size_t default_kv_block_tokens() noexcept;

/// Shared-pool block count override: NETFM_KV_BLOCKS, 0 when unset. Read
/// once. Consumers fall back to their own sizing rule when 0.
std::size_t default_kv_pool_blocks() noexcept;

/// ceil(tokens / block_tokens): blocks needed to hold `tokens` tokens.
constexpr std::size_t kv_blocks_for(std::size_t tokens,
                                    std::size_t block_tokens) noexcept {
  return block_tokens == 0 ? 0 : (tokens + block_tokens - 1) / block_tokens;
}

class KvBlockPool {
 public:
  KvBlockPool(std::size_t layers, std::size_t heads, std::size_t head_dim,
              std::size_t block_tokens, std::size_t num_blocks);
  ~KvBlockPool();
  KvBlockPool(const KvBlockPool&) = delete;
  KvBlockPool& operator=(const KvBlockPool&) = delete;

  /// Pops a free block into *block. False (and *block untouched) when the
  /// pool is exhausted.
  bool try_alloc(std::uint32_t* block);
  /// Returns `block` to the free list.
  void free_block(std::uint32_t block) noexcept;

  std::size_t layers() const noexcept { return layers_; }
  std::size_t heads() const noexcept { return heads_; }
  std::size_t head_dim() const noexcept { return head_dim_; }
  std::size_t block_tokens() const noexcept { return block_tokens_; }
  std::size_t capacity_blocks() const noexcept { return num_blocks_; }
  /// K + V bytes one block reserves across all layers.
  std::size_t bytes_per_block() const noexcept {
    return layers_ * 2 * heads_ * block_tokens_ * head_dim_ * sizeof(float);
  }

  std::size_t blocks_in_use() const noexcept;
  std::size_t free_blocks() const noexcept;
  /// High-water mark of blocks_in_use() over the pool's lifetime.
  std::size_t peak_blocks_in_use() const noexcept;
  std::size_t bytes_in_use() const noexcept {
    return blocks_in_use() * bytes_per_block();
  }

  /// Base of head h's contiguous [block_tokens, head_dim] key run inside
  /// `block` of `layer`. Row `offset` of that run is the (block-local)
  /// token at that offset.
  float* key_head(std::size_t layer, std::uint32_t block,
                  std::size_t head) noexcept {
    return keys_[layer].data() + run_base(block, head);
  }
  float* value_head(std::size_t layer, std::uint32_t block,
                    std::size_t head) noexcept {
    return values_[layer].data() + run_base(block, head);
  }
  const float* key_head(std::size_t layer, std::uint32_t block,
                        std::size_t head) const noexcept {
    return keys_[layer].data() + run_base(block, head);
  }
  const float* value_head(std::size_t layer, std::uint32_t block,
                          std::size_t head) const noexcept {
    return values_[layer].data() + run_base(block, head);
  }

 private:
  std::size_t run_base(std::uint32_t block, std::size_t head) const noexcept {
    return (static_cast<std::size_t>(block) * heads_ + head) * block_tokens_ *
           head_dim_;
  }

  std::size_t layers_, heads_, head_dim_, block_tokens_, num_blocks_;
  std::vector<nn::FloatBuffer> keys_, values_;  // one per layer

  struct State;
  std::unique_ptr<State> state_;  // mutex + free list + in-use/peak counts
};

/// One session's view into a KvBlockPool: a block table in token order.
/// Token t of the sequence lives at offset t % block_tokens of block
/// blocks[t / block_tokens]. Move-only; the destructor returns held blocks
/// to the pool.
struct PagedKvCache {
  std::shared_ptr<KvBlockPool> pool;
  std::vector<std::uint32_t> blocks;  // block table, in token order
  std::size_t capacity = 0;           // max tokens (model max_seq_len)
  std::size_t length = 0;             // tokens cached so far

  PagedKvCache() = default;
  PagedKvCache(std::shared_ptr<KvBlockPool> p, std::size_t cap)
      : pool(std::move(p)), capacity(cap) {}
  PagedKvCache(const PagedKvCache&) = delete;
  PagedKvCache& operator=(const PagedKvCache&) = delete;
  PagedKvCache(PagedKvCache&& other) noexcept { *this = std::move(other); }
  PagedKvCache& operator=(PagedKvCache&& other) noexcept {
    if (this != &other) {
      release();
      pool = std::move(other.pool);
      blocks = std::move(other.blocks);
      capacity = other.capacity;
      length = other.length;
      other.blocks.clear();
      other.length = 0;
    }
    return *this;
  }
  ~PagedKvCache() { release(); }

  /// Forgets all cached tokens but keeps the held blocks (the paged
  /// analogue of KvCache::reset keeping its allocation) — a recycled
  /// session replays into the same blocks with zero allocator traffic.
  void reset() noexcept { length = 0; }

  /// Forgets all cached tokens AND returns held blocks to the pool.
  void release() noexcept {
    if (pool)
      for (const std::uint32_t b : blocks) pool->free_block(b);
    blocks.clear();
    length = 0;
  }

  std::size_t held_blocks() const noexcept { return blocks.size(); }
};

}  // namespace netfm::model
