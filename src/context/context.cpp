#include "context/context.h"

#include <algorithm>
#include <map>

namespace netfm::ctx {
namespace {

/// Appends one packet's tokens (optionally truncated) plus structure
/// markers, respecting the remaining budget.
void append_packet_tokens(std::vector<std::string>& out,
                          const FlowPacket& packet,
                          const tok::Tokenizer& tokenizer,
                          const Options& options, std::size_t per_packet_cap) {
  if (out.size() >= options.max_tokens) return;
  if (options.packet_boundary_tokens && !out.empty() &&
      out.size() < options.max_tokens)
    out.push_back("pkt");
  if (options.direction_tokens && out.size() < options.max_tokens)
    out.push_back(packet.client_to_server ? "dir_up" : "dir_dn");
  std::vector<std::string> tokens =
      tokenizer.tokenize_packet(BytesView{packet.frame});
  if (per_packet_cap > 0 && tokens.size() > per_packet_cap)
    tokens.resize(per_packet_cap);
  for (std::string& t : tokens) {
    if (out.size() >= options.max_tokens) break;
    out.push_back(std::move(t));
  }
}

std::vector<std::vector<std::string>> packet_corpus(
    std::span<const Flow> flows, const tok::Tokenizer& tokenizer,
    const Options& options) {
  std::vector<std::vector<std::string>> corpus;
  for (const Flow& flow : flows)
    for (const FlowPacket& p : flow.packets) {
      std::vector<std::string> context;
      append_packet_tokens(context, p, tokenizer, options, 0);
      if (!context.empty()) corpus.push_back(std::move(context));
    }
  return corpus;
}

std::vector<std::vector<std::string>> flow_corpus(
    std::span<const Flow> flows, const tok::Tokenizer& tokenizer,
    const Options& options) {
  std::vector<std::vector<std::string>> corpus;
  for (const Flow& flow : flows) {
    auto context = flow_context(flow, tokenizer, options);
    if (!context.empty()) corpus.push_back(std::move(context));
  }
  return corpus;
}

std::vector<std::vector<std::string>> session_corpus(
    std::span<const Flow> flows, const tok::Tokenizer& tokenizer,
    const Options& options) {
  // Group flows by client address, order by start time, and cut a new
  // session context whenever the gap exceeds the window.
  std::map<std::uint32_t, std::vector<const Flow*>> by_client;
  for (const Flow& flow : flows)
    by_client[flow.key.src_ip.value].push_back(&flow);

  std::vector<std::vector<std::string>> corpus;
  for (auto& [client, client_flows] : by_client) {
    std::sort(client_flows.begin(), client_flows.end(),
              [](const Flow* a, const Flow* b) {
                return a->first_ts < b->first_ts;
              });
    std::vector<std::string> context;
    double window_start = client_flows.front()->first_ts;
    for (const Flow* flow : client_flows) {
      if (flow->first_ts - window_start > options.session_window_seconds &&
          !context.empty()) {
        corpus.push_back(std::move(context));
        context.clear();
        window_start = flow->first_ts;
      }
      for (const FlowPacket& p : flow->packets) {
        if (context.size() >= options.max_tokens) break;
        append_packet_tokens(context, p, tokenizer, options, options.first_m);
      }
    }
    if (!context.empty()) corpus.push_back(std::move(context));
  }
  return corpus;
}

std::vector<std::vector<std::string>> interleaved_corpus(
    std::span<const Packet> packets, const tok::Tokenizer& tokenizer,
    const Options& options) {
  std::vector<std::vector<std::string>> corpus;
  std::vector<std::string> context;
  std::size_t in_window = 0;
  for (const Packet& pkt : packets) {
    FlowPacket fp;
    fp.timestamp = pkt.timestamp;
    fp.frame = pkt.frame;
    fp.client_to_server = true;  // direction unknown at capture point
    append_packet_tokens(context, fp, tokenizer, options, options.first_m);
    if (++in_window >= options.interleaved_window ||
        context.size() >= options.max_tokens) {
      if (!context.empty()) corpus.push_back(std::move(context));
      context.clear();
      in_window = 0;
    }
  }
  if (!context.empty()) corpus.push_back(std::move(context));
  return corpus;
}

std::vector<std::vector<std::string>> first_m_of_n_corpus(
    std::span<const Flow> flows, const tok::Tokenizer& tokenizer,
    const Options& options) {
  // Endpoint = the flow's client address; collect that endpoint's packets
  // across flows in time order, then window N packets x M tokens.
  std::map<std::uint32_t, std::vector<const FlowPacket*>> by_endpoint;
  std::map<std::uint32_t, std::vector<double>> times;
  for (const Flow& flow : flows)
    for (const FlowPacket& p : flow.packets)
      by_endpoint[flow.key.src_ip.value].push_back(&p);

  std::vector<std::vector<std::string>> corpus;
  for (auto& [endpoint, pkts] : by_endpoint) {
    std::sort(pkts.begin(), pkts.end(),
              [](const FlowPacket* a, const FlowPacket* b) {
                return a->timestamp < b->timestamp;
              });
    for (std::size_t at = 0; at < pkts.size(); at += options.first_n) {
      std::vector<std::string> context;
      const std::size_t end =
          std::min(pkts.size(), at + options.first_n);
      for (std::size_t i = at; i < end; ++i)
        append_packet_tokens(context, *pkts[i], tokenizer, options,
                             options.first_m);
      if (!context.empty()) corpus.push_back(std::move(context));
    }
  }
  return corpus;
}

}  // namespace

std::string_view to_string(Strategy s) noexcept {
  switch (s) {
    case Strategy::kPacket: return "packet";
    case Strategy::kFlow: return "flow";
    case Strategy::kSession: return "session";
    case Strategy::kInterleaved: return "interleaved";
    case Strategy::kFirstMofN: return "first-m-of-n";
  }
  return "?";
}

std::vector<std::string> flow_context(const Flow& flow,
                                      const tok::Tokenizer& tokenizer,
                                      const Options& options) {
  std::vector<std::string> context;
  std::size_t packets = 0;
  for (const FlowPacket& p : flow.packets) {
    if (packets++ >= options.max_packets_per_flow ||
        context.size() >= options.max_tokens)
      break;
    append_packet_tokens(context, p, tokenizer, options, 0);
  }
  return context;
}

std::vector<std::vector<std::string>> build_corpus(
    std::span<const Flow> flows, std::span<const Packet> packets,
    const tok::Tokenizer& tokenizer, const Options& options) {
  switch (options.strategy) {
    case Strategy::kPacket:
      return packet_corpus(flows, tokenizer, options);
    case Strategy::kFlow:
      return flow_corpus(flows, tokenizer, options);
    case Strategy::kSession:
      return session_corpus(flows, tokenizer, options);
    case Strategy::kInterleaved:
      return interleaved_corpus(packets, tokenizer, options);
    case Strategy::kFirstMofN:
      return first_m_of_n_corpus(flows, tokenizer, options);
  }
  return {};
}

std::vector<SegmentPair> sample_segment_pairs(
    std::span<const Flow> flows, const tok::Tokenizer& tokenizer,
    const Options& options, std::size_t count, Rng& rng) {
  // Candidate flows need at least two packets.
  std::vector<const Flow*> usable;
  for (const Flow& flow : flows)
    if (flow.packets.size() >= 2) usable.push_back(&flow);
  std::vector<SegmentPair> pairs;
  if (usable.empty()) return pairs;

  const std::size_t half_budget = options.max_tokens / 2;
  auto packet_tokens = [&](const FlowPacket& p) {
    std::vector<std::string> tokens =
        tokenizer.tokenize_packet(BytesView{p.frame});
    if (tokens.size() > half_budget) tokens.resize(half_budget);
    return tokens;
  };

  for (std::size_t i = 0; i < count; ++i) {
    const Flow& flow = *usable[rng.uniform(usable.size())];
    const std::size_t at = rng.uniform(flow.packets.size() - 1);
    SegmentPair pair;
    pair.first = packet_tokens(flow.packets[at]);
    if (rng.chance(0.5)) {
      pair.second = packet_tokens(flow.packets[at + 1]);
      pair.is_next = true;
    } else {
      const Flow& other = *usable[rng.uniform(usable.size())];
      const FlowPacket& random_packet =
          other.packets[rng.uniform(other.packets.size())];
      pair.second = packet_tokens(random_packet);
      // A random draw can still be the true successor; label honestly.
      pair.is_next = (&other == &flow &&
                      &random_packet == &flow.packets[at + 1]);
    }
    pairs.push_back(std::move(pair));
  }
  return pairs;
}

}  // namespace netfm::ctx
