// Context construction strategies from §4.1.3. A "context" is the token
// window a model sees at once; the paper asks whether packet boundaries,
// flow/session boundaries, interleaved capture windows, or non-standard
// constructions (first M tokens of N successive packets per endpoint) make
// the best pretraining unit. Each strategy here turns a capture into a
// corpus of token-string sequences.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "net/flow.h"
#include "tokenize/tokenizer.h"

namespace netfm::ctx {

enum class Strategy {
  kPacket,       // one context per packet (shortest)
  kFlow,         // one conversation per context
  kSession,      // all of one client's traffic in a time window
  kInterleaved,  // raw capture-order windows, flows mixed together
  kFirstMofN,    // first M tokens of each of N successive endpoint packets
};

std::string_view to_string(Strategy s) noexcept;

struct Options {
  Strategy strategy = Strategy::kFlow;
  std::size_t max_tokens = 62;          // token budget per context
  bool direction_tokens = true;         // emit "dir_up"/"dir_dn" per packet
  bool packet_boundary_tokens = true;   // emit "pkt" between packets
  std::size_t max_packets_per_flow = 8; // flow/session truncation
  std::size_t first_m = 6;              // kFirstMofN: tokens per packet
  std::size_t first_n = 8;              // kFirstMofN: packets per context
  std::size_t interleaved_window = 12;  // kInterleaved: packets per window
  double session_window_seconds = 10.0; // kSession: client time window
};

/// One context per flow (kFlow semantics, reused by other strategies).
std::vector<std::string> flow_context(const Flow& flow,
                                      const tok::Tokenizer& tokenizer,
                                      const Options& options);

/// Full-corpus construction: dispatches on options.strategy. `flows` must
/// be the FlowTable output for `packets` (only kInterleaved reads the raw
/// packet stream; the rest read flows).
std::vector<std::vector<std::string>> build_corpus(
    std::span<const Flow> flows, std::span<const Packet> packets,
    const tok::Tokenizer& tokenizer, const Options& options);

/// A pretraining segment pair for next-packet prediction: token runs of
/// two packets, plus whether B really followed A in the same flow.
struct SegmentPair {
  std::vector<std::string> first;
  std::vector<std::string> second;
  bool is_next = true;
};

/// Samples `count` pairs (50% true next-packet, 50% random packet from a
/// different flow), the NSP analogue for network data.
std::vector<SegmentPair> sample_segment_pairs(
    std::span<const Flow> flows, const tok::Tokenizer& tokenizer,
    const Options& options, std::size_t count, Rng& rng);

}  // namespace netfm::ctx
