#include "net/addr.h"

#include <cstdio>

#include "common/strings.h"

namespace netfm {

std::string MacAddr::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", octets[0],
                octets[1], octets[2], octets[3], octets[4], octets[5]);
  return buf;
}

std::optional<MacAddr> MacAddr::parse(std::string_view text) {
  const auto parts = split(text, ':');
  if (parts.size() != 6) return std::nullopt;
  MacAddr mac;
  for (std::size_t i = 0; i < 6; ++i) {
    if (parts[i].size() != 2) return std::nullopt;
    unsigned value = 0;
    if (std::sscanf(parts[i].c_str(), "%2x", &value) != 1) return std::nullopt;
    mac.octets[i] = static_cast<std::uint8_t>(value);
  }
  return mac;
}

MacAddr MacAddr::from_id(std::uint64_t id) noexcept {
  MacAddr mac;
  mac.octets[0] = 0x02;  // locally administered, unicast
  for (int i = 1; i < 6; ++i)
    mac.octets[i] = static_cast<std::uint8_t>(id >> (8 * (5 - i)));
  return mac;
}

std::string Ipv4Addr::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value >> 24) & 0xff,
                (value >> 16) & 0xff, (value >> 8) & 0xff, value & 0xff);
  return buf;
}

std::optional<Ipv4Addr> Ipv4Addr::parse(std::string_view text) {
  const auto parts = split(text, '.');
  if (parts.size() != 4) return std::nullopt;
  std::uint32_t value = 0;
  for (const std::string& part : parts) {
    if (part.empty() || part.size() > 3) return std::nullopt;
    unsigned octet = 0;
    for (char c : part) {
      if (c < '0' || c > '9') return std::nullopt;
      octet = octet * 10 + static_cast<unsigned>(c - '0');
    }
    if (octet > 255) return std::nullopt;
    value = (value << 8) | octet;
  }
  return Ipv4Addr{value};
}

std::string Ipv6Addr::to_string() const {
  std::string out;
  char buf[6];
  for (int group = 0; group < 8; ++group) {
    const unsigned value = (static_cast<unsigned>(octets[group * 2]) << 8) |
                           octets[group * 2 + 1];
    std::snprintf(buf, sizeof(buf), group == 0 ? "%04x" : ":%04x", value);
    out += buf;
  }
  return out;
}

std::optional<Ipv6Addr> Ipv6Addr::parse(std::string_view text) {
  // Supports the full 8-group form and a single "::" compression.
  const auto halves = split(text, ':');
  std::vector<std::string> groups;
  int compress_at = -1;
  for (std::size_t i = 0; i < halves.size(); ++i) {
    if (halves[i].empty()) {
      // "::" produces consecutive empties; allow at most one compression.
      if (compress_at >= 0 && static_cast<std::size_t>(compress_at) + 1 != i &&
          i + 1 != halves.size())
        return std::nullopt;
      if (compress_at < 0) compress_at = static_cast<int>(groups.size());
      continue;
    }
    groups.push_back(halves[i]);
  }
  if (compress_at < 0 && groups.size() != 8) return std::nullopt;
  if (compress_at >= 0 && groups.size() >= 8) return std::nullopt;

  std::vector<unsigned> values;
  for (const std::string& g : groups) {
    if (g.size() > 4) return std::nullopt;
    unsigned v = 0;
    if (std::sscanf(g.c_str(), "%4x", &v) != 1) return std::nullopt;
    values.push_back(v);
  }
  if (compress_at >= 0) {
    const std::size_t missing = 8 - values.size();
    values.insert(values.begin() + compress_at, missing, 0u);
  }
  Ipv6Addr addr;
  for (int i = 0; i < 8; ++i) {
    addr.octets[i * 2] = static_cast<std::uint8_t>(values[i] >> 8);
    addr.octets[i * 2 + 1] = static_cast<std::uint8_t>(values[i]);
  }
  return addr;
}

}  // namespace netfm
