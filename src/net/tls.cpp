#include "net/tls.h"

#include "common/rng.h"

namespace netfm::tls {
namespace {

constexpr std::uint8_t kHandshakeClientHello = 1;
constexpr std::uint8_t kHandshakeServerHello = 2;
constexpr std::uint16_t kExtServerName = 0;
constexpr std::uint16_t kExtAlpn = 16;
constexpr std::uint16_t kExtSupportedVersions = 43;

void write_u24(ByteWriter& w, std::uint32_t v) {
  w.u8(static_cast<std::uint8_t>(v >> 16));
  w.u8(static_cast<std::uint8_t>(v >> 8));
  w.u8(static_cast<std::uint8_t>(v));
}

std::uint32_t read_u24(ByteReader& r) {
  const std::uint32_t hi = r.u8();
  const std::uint32_t mid = r.u8();
  const std::uint32_t lo = r.u8();
  return (hi << 16) | (mid << 8) | lo;
}

/// Wraps a handshake body with its 4-byte header.
Bytes handshake_message(std::uint8_t type, const Bytes& body) {
  ByteWriter w;
  w.u8(type);
  write_u24(w, static_cast<std::uint32_t>(body.size()));
  w.raw(BytesView{body});
  return w.take();
}

Bytes wrap_record(ContentType type, const Bytes& fragment) {
  Record rec;
  rec.type = type;
  rec.fragment = fragment;
  return rec.encode();
}

}  // namespace

Bytes Record::encode() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(type));
  w.u16(version);
  w.u16(static_cast<std::uint16_t>(fragment.size()));
  w.raw(BytesView{fragment});
  return w.take();
}

std::optional<Record> Record::decode(BytesView wire, std::size_t& consumed) {
  ByteReader r(wire);
  Record rec;
  rec.type = static_cast<ContentType>(r.u8());
  rec.version = r.u16();
  const std::uint16_t length = r.u16();
  const BytesView body = r.take(length);
  if (r.truncated()) return std::nullopt;
  rec.fragment.assign(body.begin(), body.end());
  consumed = r.offset();
  return rec;
}

Bytes ClientHello::encode_handshake() const {
  ByteWriter body;
  body.u16(legacy_version);
  for (std::uint8_t b : random) body.u8(b);
  body.u8(static_cast<std::uint8_t>(session_id.size()));
  body.raw(BytesView{session_id});
  body.u16(static_cast<std::uint16_t>(cipher_suites.size() * 2));
  for (std::uint16_t suite : cipher_suites) body.u16(suite);
  body.u8(1);  // compression methods: length 1
  body.u8(0);  // null compression

  ByteWriter exts;
  if (!server_name.empty()) {
    exts.u16(kExtServerName);
    const auto name_len = static_cast<std::uint16_t>(server_name.size());
    exts.u16(static_cast<std::uint16_t>(name_len + 5));
    exts.u16(static_cast<std::uint16_t>(name_len + 3));  // server name list
    exts.u8(0);                                          // host_name
    exts.u16(name_len);
    exts.raw(server_name);
  }
  if (!alpn.empty()) {
    ByteWriter list;
    for (const std::string& proto : alpn) {
      list.u8(static_cast<std::uint8_t>(proto.size()));
      list.raw(proto);
    }
    exts.u16(kExtAlpn);
    exts.u16(static_cast<std::uint16_t>(list.size() + 2));
    exts.u16(static_cast<std::uint16_t>(list.size()));
    exts.raw(BytesView{list.bytes()});
  }
  if (!supported_versions.empty()) {
    exts.u16(kExtSupportedVersions);
    exts.u16(static_cast<std::uint16_t>(supported_versions.size() * 2 + 1));
    exts.u8(static_cast<std::uint8_t>(supported_versions.size() * 2));
    for (std::uint16_t v : supported_versions) exts.u16(v);
  }
  body.u16(static_cast<std::uint16_t>(exts.size()));
  body.raw(BytesView{exts.bytes()});
  return handshake_message(kHandshakeClientHello, body.take());
}

std::optional<ClientHello> ClientHello::decode_handshake(BytesView wire) {
  ByteReader r(wire);
  if (r.u8() != kHandshakeClientHello) return std::nullopt;
  const std::uint32_t length = read_u24(r);
  if (length > r.remaining()) return std::nullopt;

  ClientHello hello;
  hello.legacy_version = r.u16();
  for (auto& b : hello.random) b = r.u8();
  const std::uint8_t sid_len = r.u8();
  const BytesView sid = r.take(sid_len);
  hello.session_id.assign(sid.begin(), sid.end());
  const std::uint16_t suites_len = r.u16();
  if (suites_len % 2 != 0) return std::nullopt;
  // Clamp against the bytes present before reserving: a lying length field
  // must not allocate a 32k-entry vector of zeros off a 10-byte message.
  if (suites_len > r.remaining()) return std::nullopt;
  hello.cipher_suites.reserve(suites_len / 2);
  for (std::uint16_t i = 0; i < suites_len / 2; ++i)
    hello.cipher_suites.push_back(r.u16());
  const std::uint8_t comp_len = r.u8();
  r.skip(comp_len);
  if (r.truncated()) return std::nullopt;
  if (r.remaining() < 2) return hello;  // extensions optional

  const std::uint16_t ext_total = r.u16();
  std::size_t ext_consumed = 0;
  while (ext_consumed + 4 <= ext_total && !r.truncated()) {
    const std::uint16_t ext_type = r.u16();
    const std::uint16_t ext_len = r.u16();
    const BytesView ext = r.take(ext_len);
    if (r.truncated()) return std::nullopt;
    ext_consumed += 4 + ext_len;
    ByteReader er(ext);
    switch (ext_type) {
      case kExtServerName: {
        er.u16();  // list length
        const std::uint8_t name_type = er.u8();
        const std::uint16_t name_len = er.u16();
        if (name_type == 0) hello.server_name = er.take_string(name_len);
        break;
      }
      case kExtAlpn: {
        er.u16();  // list length
        while (!er.done() && !er.truncated()) {
          const std::uint8_t proto_len = er.u8();
          hello.alpn.push_back(er.take_string(proto_len));
        }
        break;
      }
      case kExtSupportedVersions: {
        const std::uint8_t versions_len = er.u8();
        for (std::uint8_t i = 0; i + 1 < versions_len; i += 2)
          hello.supported_versions.push_back(er.u16());
        break;
      }
      default:
        break;
    }
  }
  return hello;
}

Bytes ClientHello::encode_record() const {
  return wrap_record(ContentType::kHandshake, encode_handshake());
}

Bytes ServerHello::encode_handshake() const {
  ByteWriter body;
  body.u16(legacy_version);
  for (std::uint8_t b : random) body.u8(b);
  body.u8(0);  // empty session id
  body.u16(cipher_suite);
  body.u8(0);  // null compression
  body.u16(0); // no extensions
  return handshake_message(kHandshakeServerHello, body.take());
}

std::optional<ServerHello> ServerHello::decode_handshake(BytesView wire) {
  ByteReader r(wire);
  if (r.u8() != kHandshakeServerHello) return std::nullopt;
  read_u24(r);
  ServerHello hello;
  hello.legacy_version = r.u16();
  for (auto& b : hello.random) b = r.u8();
  const std::uint8_t sid_len = r.u8();
  r.skip(sid_len);
  hello.cipher_suite = r.u16();
  if (r.truncated()) return std::nullopt;
  return hello;
}

Bytes ServerHello::encode_record() const {
  return wrap_record(ContentType::kHandshake, encode_handshake());
}

Bytes application_data_record(std::size_t length, std::uint64_t seed) {
  Rng rng(seed);
  Bytes fragment(length);
  for (auto& b : fragment) b = static_cast<std::uint8_t>(rng.next());
  return wrap_record(ContentType::kApplicationData, fragment);
}

bool is_weak_suite(std::uint16_t suite) noexcept {
  switch (static_cast<CipherSuite>(suite)) {
    case CipherSuite::kRsaAes128CbcSha:
    case CipherSuite::kRsaAes256CbcSha:
    case CipherSuite::kRsa3desEdeCbcSha:
      return true;
    default:
      return false;
  }
}

}  // namespace netfm::tls
