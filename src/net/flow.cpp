#include "net/flow.h"

#include "common/metrics.h"

namespace netfm {
namespace {

void note_flow_finished(std::size_t n = 1) {
  static const auto c = metrics::counter("net.flow.flows_finished");
  c.add(n);
}

}  // namespace

FiveTuple FiveTuple::canonical() const noexcept {
  const auto a = std::make_tuple(src_ip.value, src_port);
  const auto b = std::make_tuple(dst_ip.value, dst_port);
  if (a <= b) return *this;
  return FiveTuple{dst_ip, src_ip, dst_port, src_port, protocol};
}

std::string FiveTuple::to_string() const {
  std::string proto;
  switch (static_cast<IpProto>(protocol)) {
    case IpProto::kTcp: proto = "tcp"; break;
    case IpProto::kUdp: proto = "udp"; break;
    case IpProto::kIcmp: proto = "icmp"; break;
    default: proto = std::to_string(protocol); break;
  }
  return src_ip.to_string() + ":" + std::to_string(src_port) + " -> " +
         dst_ip.to_string() + ":" + std::to_string(dst_port) + " " + proto;
}

std::optional<FiveTuple> FiveTuple::from_packet(
    const ParsedPacket& pkt) noexcept {
  if (!pkt.ipv4) return std::nullopt;
  FiveTuple t;
  t.src_ip = pkt.ipv4->src;
  t.dst_ip = pkt.ipv4->dst;
  t.src_port = pkt.src_port();
  t.dst_port = pkt.dst_port();
  t.protocol = pkt.ipv4->protocol;
  return t;
}

std::size_t FiveTupleHash::operator()(const FiveTuple& t) const noexcept {
  // FNV-1a over the tuple fields.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  mix(t.src_ip.value);
  mix(t.dst_ip.value);
  mix((std::uint64_t{t.src_port} << 24) | (std::uint64_t{t.dst_port} << 8) |
      t.protocol);
  return static_cast<std::size_t>(h);
}

bool FlowTable::add(const Packet& packet) {
  static const auto c_packets = metrics::counter("net.flow.packets");
  static const auto c_bytes = metrics::counter("net.flow.bytes", "byte");
  c_packets.add();
  c_bytes.add(packet.frame.size());
  const auto parsed = parse_packet(BytesView{packet.frame});
  if (!parsed) return false;
  const auto tuple = FiveTuple::from_packet(*parsed);
  if (!tuple) return false;

  evict_idle(packet.timestamp);

  const FiveTuple key = tuple->canonical();
  auto [it, inserted] = active_.try_emplace(key);
  Flow& flow = it->second;
  if (inserted) {
    // Orient the flow so the first packet's sender is the client.
    flow.key = *tuple;
    flow.first_ts = packet.timestamp;
    flow.app = parsed->app;
  }
  flow.last_ts = packet.timestamp;

  FlowPacket fp;
  fp.timestamp = packet.timestamp;
  fp.frame_size = packet.frame.size();
  fp.frame = packet.frame;
  fp.client_to_server = (tuple->src_ip == flow.key.src_ip &&
                         tuple->src_port == flow.key.src_port);
  if (fp.client_to_server)
    flow.bytes_up += packet.frame.size();
  else
    flow.bytes_down += packet.frame.size();
  flow.packets.push_back(std::move(fp));
  if (flow.app == AppProtocol::kUnknown) flow.app = parsed->app;

  // TCP lifecycle tracking. A closed flow is only evicted once the final
  // ACK of the FIN/FIN exchange has been absorbed, so teardown packets
  // don't orphan into a spurious one-packet flow.
  if (parsed->tcp) {
    const TcpHeader& tcp = *parsed->tcp;
    const bool was_closed = flow.tcp_state == TcpState::kClosed;
    if (tcp.has(TcpFlags::kRst)) {
      flow.tcp_state = TcpState::kReset;
    } else if (tcp.has(TcpFlags::kSyn) && !tcp.has(TcpFlags::kAck)) {
      flow.tcp_state = TcpState::kSynSent;
    } else if (flow.tcp_state == TcpState::kSynSent &&
               tcp.has(TcpFlags::kAck)) {
      flow.tcp_state = TcpState::kEstablished;
    } else if (tcp.has(TcpFlags::kFin)) {
      flow.tcp_state = flow.tcp_state == TcpState::kFinWait
                           ? TcpState::kClosed
                           : TcpState::kFinWait;
    }
    const bool absorb_final_ack =
        was_closed && !tcp.has(TcpFlags::kFin) && !tcp.has(TcpFlags::kSyn);
    if (flow.tcp_state == TcpState::kReset || absorb_final_ack) {
      finished_.push_back(std::move(flow));
      active_.erase(it);
      note_flow_finished();
    }
  }
  return true;
}

void FlowTable::evict_idle(double now) {
  for (auto it = active_.begin(); it != active_.end();) {
    if (now - it->second.last_ts > idle_timeout_) {
      finished_.push_back(std::move(it->second));
      it = active_.erase(it);
      note_flow_finished();
    } else {
      ++it;
    }
  }
}

void FlowTable::flush() {
  note_flow_finished(active_.size());
  for (auto& [key, flow] : active_) finished_.push_back(std::move(flow));
  active_.clear();
}

}  // namespace netfm
