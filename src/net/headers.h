// Layer-2/3/4 header value types with parse + serialize.
//
// Conventions shared by all codecs in this module:
//   * `parse` consumes from a ByteReader positioned at the header start and
//     returns std::nullopt on truncation or malformed fields;
//   * `write` appends the wire form to a ByteWriter;
//   * checksums are computed on write and verified separately (generators
//     need to write-then-fix, parsers may face captures with offloaded
//     checksums).
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.h"
#include "net/addr.h"

namespace netfm {

/// EtherType values this library understands.
enum class EtherType : std::uint16_t {
  kIpv4 = 0x0800,
  kArp = 0x0806,
  kIpv6 = 0x86dd,
};

/// IP protocol numbers (a deliberately small, well-known subset).
enum class IpProto : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
  kGre = 47,
  kIcmpv6 = 58,
  kSctp = 132,
};

/// Ethernet II frame header (no 802.1Q tag support; generators don't tag).
struct EthernetHeader {
  MacAddr dst;
  MacAddr src;
  std::uint16_t ether_type = 0;

  static constexpr std::size_t kWireSize = 14;
  static std::optional<EthernetHeader> parse(ByteReader& reader);
  void write(ByteWriter& writer) const;
};

/// IPv4 header (options preserved as raw bytes).
struct Ipv4Header {
  std::uint8_t dscp_ecn = 0;
  std::uint16_t total_length = 0;
  std::uint16_t identification = 0;
  std::uint16_t flags_fragment = 0;  // 3-bit flags + 13-bit offset
  std::uint8_t ttl = 64;
  std::uint8_t protocol = 0;
  std::uint16_t checksum = 0;  // as parsed; recomputed on write
  Ipv4Addr src;
  Ipv4Addr dst;
  Bytes options;

  std::size_t header_length() const noexcept { return 20 + options.size(); }
  bool dont_fragment() const noexcept { return (flags_fragment & 0x4000) != 0; }
  bool more_fragments() const noexcept { return (flags_fragment & 0x2000) != 0; }
  std::uint16_t fragment_offset() const noexcept {
    return flags_fragment & 0x1fff;
  }

  static std::optional<Ipv4Header> parse(ByteReader& reader);
  /// Writes with a freshly computed header checksum; `total_length` must
  /// already include the payload.
  void write(ByteWriter& writer) const;
  /// Checksum as it should appear on the wire for this header's fields.
  std::uint16_t compute_checksum() const;
};

/// IPv6 fixed header (extension headers are treated as payload).
struct Ipv6Header {
  std::uint8_t traffic_class = 0;
  std::uint32_t flow_label = 0;
  std::uint16_t payload_length = 0;
  std::uint8_t next_header = 0;
  std::uint8_t hop_limit = 64;
  Ipv6Addr src;
  Ipv6Addr dst;

  static constexpr std::size_t kWireSize = 40;
  static std::optional<Ipv6Header> parse(ByteReader& reader);
  void write(ByteWriter& writer) const;
};

/// TCP flag bits.
struct TcpFlags {
  static constexpr std::uint8_t kFin = 0x01;
  static constexpr std::uint8_t kSyn = 0x02;
  static constexpr std::uint8_t kRst = 0x04;
  static constexpr std::uint8_t kPsh = 0x08;
  static constexpr std::uint8_t kAck = 0x10;
  static constexpr std::uint8_t kUrg = 0x20;
};

/// TCP header (options preserved raw; checksum computed with pseudo-header).
struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;
  std::uint16_t window = 65535;
  std::uint16_t checksum = 0;
  std::uint16_t urgent = 0;
  Bytes options;

  std::size_t header_length() const noexcept { return 20 + options.size(); }
  bool has(std::uint8_t flag) const noexcept { return (flags & flag) != 0; }

  static std::optional<TcpHeader> parse(ByteReader& reader);
  /// Writes with checksum over the IPv4 pseudo-header + this segment.
  void write(ByteWriter& writer, const Ipv4Header& ip, BytesView payload) const;
};

/// UDP header.
struct UdpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;
  std::uint16_t checksum = 0;

  static constexpr std::size_t kWireSize = 8;
  static std::optional<UdpHeader> parse(ByteReader& reader);
  void write(ByteWriter& writer, const Ipv4Header& ip, BytesView payload) const;
};

/// ICMP header (echo request/reply focus).
struct IcmpHeader {
  std::uint8_t type = 8;
  std::uint8_t code = 0;
  std::uint16_t checksum = 0;
  std::uint16_t identifier = 0;
  std::uint16_t sequence = 0;

  static constexpr std::size_t kWireSize = 8;
  static std::optional<IcmpHeader> parse(ByteReader& reader);
  void write(ByteWriter& writer, BytesView payload) const;
};

/// TCP/UDP checksum helper: RFC 793/768 pseudo-header sum for IPv4.
std::uint16_t l4_checksum_ipv4(const Ipv4Header& ip, IpProto proto,
                               BytesView l4_bytes);

}  // namespace netfm
