// TLS record + handshake codec, scoped to what traffic analysis sees in the
// clear: ClientHello (ciphersuites, SNI, ALPN, supported versions) and
// ServerHello (chosen suite). Encrypted content is modeled as opaque
// application-data records.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace netfm::tls {

/// TLS record content types.
enum class ContentType : std::uint8_t {
  kChangeCipherSpec = 20,
  kAlert = 21,
  kHandshake = 22,
  kApplicationData = 23,
};

/// A handful of real ciphersuite code points, including the adjacent pair
/// (0xc02f / 0xc030 = 49199 / 49200) the paper's NorBERT discussion cites.
enum class CipherSuite : std::uint16_t {
  kTlsAes128GcmSha256 = 0x1301,
  kTlsAes256GcmSha384 = 0x1302,
  kTlsChacha20Poly1305Sha256 = 0x1303,
  kEcdheRsaAes128GcmSha256 = 0xc02f,   // 49199
  kEcdheRsaAes256GcmSha384 = 0xc030,   // 49200
  kEcdheEcdsaAes128GcmSha256 = 0xc02b,
  kEcdheEcdsaAes256GcmSha384 = 0xc02c,
  kRsaAes128CbcSha = 0x002f,   // legacy/weak cluster
  kRsaAes256CbcSha = 0x0035,
  kRsa3desEdeCbcSha = 0x000a,
};

/// One TLS record (header + raw fragment).
struct Record {
  ContentType type = ContentType::kHandshake;
  std::uint16_t version = 0x0303;  // TLS 1.2 on the wire
  Bytes fragment;

  Bytes encode() const;
  /// Decodes one record from the front of `wire`; `consumed` receives the
  /// record's wire size.
  static std::optional<Record> decode(BytesView wire, std::size_t& consumed);
};

/// ClientHello body (the fields visible to passive analysis).
struct ClientHello {
  std::uint16_t legacy_version = 0x0303;
  std::array<std::uint8_t, 32> random{};
  Bytes session_id;
  std::vector<std::uint16_t> cipher_suites;
  std::string server_name;             // SNI, empty if absent
  std::vector<std::string> alpn;       // e.g. {"h2", "http/1.1"}
  std::vector<std::uint16_t> supported_versions;  // e.g. {0x0304, 0x0303}

  /// Encodes the full handshake message (type + length + body).
  Bytes encode_handshake() const;
  /// Decodes from a handshake message (starting at the handshake type byte).
  static std::optional<ClientHello> decode_handshake(BytesView wire);

  /// Wraps the handshake in a TLS record ready for a TCP payload.
  Bytes encode_record() const;
};

/// ServerHello body (selected suite only; extensions ignored on decode).
struct ServerHello {
  std::uint16_t legacy_version = 0x0303;
  std::array<std::uint8_t, 32> random{};
  std::uint16_t cipher_suite = 0xc02f;

  Bytes encode_handshake() const;
  static std::optional<ServerHello> decode_handshake(BytesView wire);
  Bytes encode_record() const;
};

/// Builds an opaque application-data record of `length` payload bytes
/// (pseudo-random, keyed by `seed` so traces are reproducible).
Bytes application_data_record(std::size_t length, std::uint64_t seed);

/// True if the suite is in the legacy/weak cluster (CBC/3DES, no ECDHE).
bool is_weak_suite(std::uint16_t suite) noexcept;

}  // namespace netfm::tls
