// DNS message codec (RFC 1035) with name compression on both paths.
//
// Covers the record types the traffic generator and tokenizer care about:
// A, AAAA, CNAME, MX, NS, TXT, PTR. Unknown RDATA is preserved raw so a
// decode→encode round trip never loses bytes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "net/addr.h"

namespace netfm::dns {

/// Query/record types (subset).
enum class Type : std::uint16_t {
  kA = 1,
  kNs = 2,
  kCname = 5,
  kSoa = 6,
  kPtr = 12,
  kMx = 15,
  kTxt = 16,
  kAaaa = 28,
};

/// Standard response codes.
enum class Rcode : std::uint8_t {
  kNoError = 0,
  kFormErr = 1,
  kServFail = 2,
  kNxDomain = 3,
  kNotImp = 4,
  kRefused = 5,
};

/// One question entry.
struct Question {
  std::string name;  // dotted form, no trailing dot ("www.example.com")
  std::uint16_t type = 1;
  std::uint16_t klass = 1;  // IN

  bool operator==(const Question&) const = default;
};

/// One resource record. RDATA is kept both raw and, for known types,
/// decoded into `rdata_name`/`rdata_ip` for convenience.
struct ResourceRecord {
  std::string name;
  std::uint16_t type = 1;
  std::uint16_t klass = 1;
  std::uint32_t ttl = 300;
  Bytes rdata;               // raw wire RDATA (post-decompression for names)
  std::string rdata_name;    // CNAME/NS/PTR/MX target, TXT text
  std::uint16_t preference = 0;  // MX only

  bool operator==(const ResourceRecord&) const = default;

  /// A-record convenience constructors.
  static ResourceRecord a(std::string name, Ipv4Addr addr,
                          std::uint32_t ttl = 300);
  static ResourceRecord aaaa(std::string name, const Ipv6Addr& addr,
                             std::uint32_t ttl = 300);
  static ResourceRecord cname(std::string name, std::string target,
                              std::uint32_t ttl = 300);
};

/// Full DNS message.
struct Message {
  std::uint16_t id = 0;
  bool is_response = false;
  std::uint8_t opcode = 0;
  bool authoritative = false;
  bool truncated = false;
  bool recursion_desired = true;
  bool recursion_available = false;
  Rcode rcode = Rcode::kNoError;
  std::vector<Question> questions;
  std::vector<ResourceRecord> answers;
  std::vector<ResourceRecord> authorities;
  std::vector<ResourceRecord> additionals;

  /// Encodes with name compression (full-suffix reuse).
  Bytes encode() const;

  /// Decodes a full message; nullopt on malformed/truncated input or
  /// compression loops.
  static std::optional<Message> decode(BytesView wire);
};

/// Encodes one domain name at the current writer position, compressing
/// against `offsets` (suffix → absolute offset), which it extends.
void encode_name(ByteWriter& writer, const std::string& name,
                 std::vector<std::pair<std::string, std::size_t>>& offsets);

/// Decodes a (possibly compressed) name starting at reader's cursor.
std::optional<std::string> decode_name(ByteReader& reader);

}  // namespace netfm::dns
