// Flow abstraction: 5-tuple keys, per-flow packet aggregation, and a flow
// table with idle timeout. Context builders (src/context) consume the
// Flow objects produced here.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/packet.h"

namespace netfm {

/// Directionless 5-tuple. `canonical()` orders the endpoints so both
/// directions of a conversation map to the same key.
struct FiveTuple {
  Ipv4Addr src_ip;
  Ipv4Addr dst_ip;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = 0;

  bool operator==(const FiveTuple&) const = default;

  /// Key with (ip,port) pairs sorted so A->B and B->A collide.
  FiveTuple canonical() const noexcept;

  /// "10.0.0.1:1234 -> 10.0.0.2:80 tcp"
  std::string to_string() const;

  /// Extracts from a parsed packet (IPv4 only; nullopt otherwise).
  static std::optional<FiveTuple> from_packet(const ParsedPacket& pkt) noexcept;
};

struct FiveTupleHash {
  std::size_t operator()(const FiveTuple& t) const noexcept;
};

/// One packet's contribution to a flow, with the metadata tokenizers need.
struct FlowPacket {
  double timestamp = 0.0;
  bool client_to_server = true;
  std::size_t frame_size = 0;
  Bytes frame;  // full frame bytes (owned; flows outlive the capture buffer)
};

/// TCP connection lifecycle as tracked from flags.
enum class TcpState : std::uint8_t {
  kNone = 0,
  kSynSent,
  kEstablished,
  kFinWait,
  kClosed,
  kReset,
};

/// A reassembled conversation with summary statistics.
struct Flow {
  FiveTuple key;             // canonical orientation: first packet = client
  std::vector<FlowPacket> packets;
  double first_ts = 0.0;
  double last_ts = 0.0;
  std::uint64_t bytes_up = 0;    // client -> server
  std::uint64_t bytes_down = 0;  // server -> client
  TcpState tcp_state = TcpState::kNone;
  AppProtocol app = AppProtocol::kUnknown;

  double duration() const noexcept { return last_ts - first_ts; }
  std::size_t packet_count() const noexcept { return packets.size(); }
};

/// Aggregates packets into flows. Flows are evicted (moved to the finished
/// list) after `idle_timeout` seconds without traffic, on TCP close, or at
/// `flush()`.
class FlowTable {
 public:
  explicit FlowTable(double idle_timeout = 60.0) noexcept
      : idle_timeout_(idle_timeout) {}

  /// Feeds one packet; returns false if the frame failed to parse as IPv4.
  bool add(const Packet& packet);

  /// Moves all still-active flows into the finished list.
  void flush();

  /// Flows completed so far (closed, timed out, or flushed).
  const std::vector<Flow>& finished() const noexcept { return finished_; }
  std::vector<Flow> take_finished() noexcept { return std::move(finished_); }

  std::size_t active_count() const noexcept { return active_.size(); }

 private:
  void evict_idle(double now);

  double idle_timeout_;
  std::unordered_map<FiveTuple, Flow, FiveTupleHash> active_;
  std::vector<Flow> finished_;
};

}  // namespace netfm
