// Trace anonymization (§4.2): the paper names "concerns of leaking
// sensitive content" as the reason network data is rarely released. This
// module rewrites captures so they can be shared while keeping the
// structure models learn from:
//   * IPv4 addresses: keyed per-octet permutation that preserves prefix
//     relationships (two addresses sharing a /24 still share one after
//     anonymization) — the property subnet-aware analysis needs;
//   * MAC addresses: keyed permutation of the NIC-specific bytes, OUI
//     replaced by a locally-administered prefix;
//   * TCP/UDP checksums recomputed so anonymized traces stay well-formed.
// Payloads are left intact by default (our generator emits no secrets);
// `scrub_payloads` replaces application payloads with keyed noise of the
// same length for captures that might contain real content.
#pragma once

#include <cstdint>

#include "net/packet.h"

namespace netfm {

struct AnonymizeOptions {
  std::uint64_t key = 0x5eed;  // deterministic; same key => same mapping
  bool scrub_payloads = false;
};

/// Stateful anonymizer: consistent across packets/flows/captures.
class TraceAnonymizer {
 public:
  explicit TraceAnonymizer(AnonymizeOptions options = {});

  /// Prefix-preserving keyed mapping (deterministic per key).
  Ipv4Addr anonymize(Ipv4Addr addr) const;
  MacAddr anonymize(const MacAddr& mac) const;

  /// Rewrites one frame in place; returns false if it fails to parse (the
  /// frame is then left untouched). Checksums are recomputed.
  bool anonymize_frame(Bytes& frame) const;

  /// Rewrites a whole capture; returns how many frames were rewritten.
  std::size_t anonymize_trace(std::vector<Packet>& packets) const;

 private:
  /// Keyed octet permutation conditioned on the address prefix seen so
  /// far — equal prefixes map to equal prefixes (Crypto-PAn's property,
  /// with a PRF-seeded Fisher-Yates permutation instead of AES).
  std::uint8_t permute_octet(std::uint8_t octet, std::uint64_t prefix_key)
      const;

  AnonymizeOptions options_;
};

}  // namespace netfm
