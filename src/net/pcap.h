// Classic pcap (libpcap tcpdump) file format reader/writer, implemented
// from the format spec — no libpcap dependency. Microsecond resolution,
// LINKTYPE_ETHERNET, both endiannesses accepted on read.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "net/packet.h"

namespace netfm {

/// Snap length written into file headers and enforced on decode: no record
/// may claim (or allocate) more than this many bytes per frame.
inline constexpr std::uint32_t kPcapSnapLen = 262144;

/// Serializes packets to an in-memory pcap byte stream.
Bytes pcap_encode(const std::vector<Packet>& packets);

/// Parses a pcap byte stream. Returns nullopt on bad magic or truncated
/// record headers. Per-record corruption is contained: a record whose
/// incl_len exceeds the snap length or the remaining bytes ends the parse,
/// and a record whose incl_len exceeds its orig_len is skipped — neither
/// aborts the packets already decoded.
std::optional<std::vector<Packet>> pcap_decode(BytesView data);

/// Writes packets to a pcap file atomically (temp + rename). Returns false
/// on I/O failure, leaving any previous file intact.
bool pcap_write_file(const std::string& path,
                     const std::vector<Packet>& packets);

/// Reads a pcap file; nullopt on I/O or format failure.
std::optional<std::vector<Packet>> pcap_read_file(const std::string& path);

}  // namespace netfm
