// Classic pcap (libpcap tcpdump) file format reader/writer, implemented
// from the format spec — no libpcap dependency. Microsecond resolution,
// LINKTYPE_ETHERNET, both endiannesses accepted on read.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "net/packet.h"

namespace netfm {

/// Serializes packets to an in-memory pcap byte stream.
Bytes pcap_encode(const std::vector<Packet>& packets);

/// Parses a pcap byte stream. Returns nullopt on bad magic or truncated
/// record headers; a truncated final packet body is dropped, not fatal.
std::optional<std::vector<Packet>> pcap_decode(BytesView data);

/// Writes packets to a pcap file. Returns false on I/O failure.
bool pcap_write_file(const std::string& path,
                     const std::vector<Packet>& packets);

/// Reads a pcap file; nullopt on I/O or format failure.
std::optional<std::vector<Packet>> pcap_read_file(const std::string& path);

}  // namespace netfm
