#include "net/packet.h"

namespace netfm {

std::uint16_t ParsedPacket::src_port() const noexcept {
  if (tcp) return tcp->src_port;
  if (udp) return udp->src_port;
  return 0;
}

std::uint16_t ParsedPacket::dst_port() const noexcept {
  if (tcp) return tcp->dst_port;
  if (udp) return udp->dst_port;
  return 0;
}

std::uint8_t ParsedPacket::ip_protocol() const noexcept {
  if (ipv4) return ipv4->protocol;
  if (ipv6) return ipv6->next_header;
  return 0;
}

std::optional<ParsedPacket> parse_packet(BytesView frame) {
  ByteReader r(frame);
  ParsedPacket pkt;
  auto eth = EthernetHeader::parse(r);
  if (!eth) return std::nullopt;
  pkt.eth = *eth;

  std::uint8_t l4_proto = 0;
  std::size_t l4_length = 0;
  if (pkt.eth.ether_type == static_cast<std::uint16_t>(EtherType::kIpv4)) {
    auto ip = Ipv4Header::parse(r);
    if (!ip) return std::nullopt;
    l4_proto = ip->protocol;
    if (ip->total_length < ip->header_length()) return std::nullopt;
    l4_length = ip->total_length - ip->header_length();
    pkt.ipv4 = std::move(*ip);
  } else if (pkt.eth.ether_type ==
             static_cast<std::uint16_t>(EtherType::kIpv6)) {
    auto ip = Ipv6Header::parse(r);
    if (!ip) return std::nullopt;
    l4_proto = ip->next_header;
    l4_length = ip->payload_length;
    pkt.ipv6 = std::move(*ip);
  } else {
    return std::nullopt;
  }
  if (l4_length > r.remaining()) return std::nullopt;

  switch (static_cast<IpProto>(l4_proto)) {
    case IpProto::kTcp: {
      auto tcp = TcpHeader::parse(r);
      if (!tcp) return std::nullopt;
      const std::size_t header = tcp->header_length();
      if (l4_length < header) return std::nullopt;
      pkt.l4_payload = r.take(l4_length - header);
      pkt.tcp = std::move(*tcp);
      break;
    }
    case IpProto::kUdp: {
      auto udp = UdpHeader::parse(r);
      if (!udp) return std::nullopt;
      if (udp->length < UdpHeader::kWireSize) return std::nullopt;
      pkt.l4_payload = r.take(udp->length - UdpHeader::kWireSize);
      pkt.udp = std::move(*udp);
      break;
    }
    case IpProto::kIcmp: {
      auto icmp = IcmpHeader::parse(r);
      if (!icmp) return std::nullopt;
      if (l4_length < IcmpHeader::kWireSize) return std::nullopt;
      pkt.l4_payload = r.take(l4_length - IcmpHeader::kWireSize);
      pkt.icmp = std::move(*icmp);
      break;
    }
    default:
      pkt.l4_payload = r.take(l4_length);
      break;
  }
  if (r.truncated()) return std::nullopt;
  pkt.app = guess_app(pkt.src_port(), pkt.dst_port(), pkt.l4_payload);
  return pkt;
}

AppProtocol guess_app(std::uint16_t src_port, std::uint16_t dst_port,
                      BytesView payload) noexcept {
  auto port_is = [&](std::uint16_t p) {
    return src_port == p || dst_port == p;
  };
  if (port_is(53) || port_is(5353)) return AppProtocol::kDns;
  if (port_is(123)) return AppProtocol::kNtp;
  if (port_is(25) || port_is(587)) return AppProtocol::kSmtp;
  if (port_is(143) || port_is(993)) return AppProtocol::kImap;
  if (port_is(22)) return AppProtocol::kSsh;
  if (port_is(443)) {
    // Could be TLS-over-TCP or QUIC-over-UDP; payload shape disambiguates.
    if (!payload.empty() && (payload[0] & 0x80) != 0 && payload.size() > 20)
      return AppProtocol::kQuic;
    return AppProtocol::kTls;
  }
  if (port_is(80) || port_is(8080)) return AppProtocol::kHttp;
  if (!payload.empty()) {
    if (payload[0] == 0x16 && payload.size() >= 3 && payload[1] == 0x03)
      return AppProtocol::kTls;
    static constexpr std::string_view kMethods[] = {"GET ", "POST", "HTTP",
                                                    "HEAD", "PUT "};
    if (payload.size() >= 4) {
      const std::string_view head(reinterpret_cast<const char*>(payload.data()),
                                  4);
      for (std::string_view m : kMethods)
        if (head == m) return AppProtocol::kHttp;
    }
  }
  return AppProtocol::kUnknown;
}

std::string_view app_name(AppProtocol app) noexcept {
  switch (app) {
    case AppProtocol::kDns: return "dns";
    case AppProtocol::kHttp: return "http";
    case AppProtocol::kTls: return "tls";
    case AppProtocol::kNtp: return "ntp";
    case AppProtocol::kSmtp: return "smtp";
    case AppProtocol::kImap: return "imap";
    case AppProtocol::kSsh: return "ssh";
    case AppProtocol::kQuic: return "quic";
    case AppProtocol::kUnknown: break;
  }
  return "unknown";
}

Bytes build_tcp_frame(const MacAddr& src_mac, const MacAddr& dst_mac,
                      Ipv4Header ip, TcpHeader tcp, BytesView payload) {
  ip.protocol = static_cast<std::uint8_t>(IpProto::kTcp);
  ip.total_length = static_cast<std::uint16_t>(
      ip.header_length() + tcp.header_length() + payload.size());
  ByteWriter w;
  EthernetHeader eth{dst_mac, src_mac,
                     static_cast<std::uint16_t>(EtherType::kIpv4)};
  eth.write(w);
  ip.write(w);
  tcp.write(w, ip, payload);
  return w.take();
}

Bytes build_udp_frame(const MacAddr& src_mac, const MacAddr& dst_mac,
                      Ipv4Header ip, UdpHeader udp, BytesView payload) {
  ip.protocol = static_cast<std::uint8_t>(IpProto::kUdp);
  ip.total_length = static_cast<std::uint16_t>(
      ip.header_length() + UdpHeader::kWireSize + payload.size());
  ByteWriter w;
  EthernetHeader eth{dst_mac, src_mac,
                     static_cast<std::uint16_t>(EtherType::kIpv4)};
  eth.write(w);
  ip.write(w);
  udp.write(w, ip, payload);
  return w.take();
}

Bytes build_icmp_frame(const MacAddr& src_mac, const MacAddr& dst_mac,
                       Ipv4Header ip, IcmpHeader icmp, BytesView payload) {
  ip.protocol = static_cast<std::uint8_t>(IpProto::kIcmp);
  ip.total_length = static_cast<std::uint16_t>(
      ip.header_length() + IcmpHeader::kWireSize + payload.size());
  ByteWriter w;
  EthernetHeader eth{dst_mac, src_mac,
                     static_cast<std::uint16_t>(EtherType::kIpv4)};
  eth.write(w);
  ip.write(w);
  icmp.write(w, payload);
  return w.take();
}

}  // namespace netfm
