// HTTP/1.1 request/response codec (textual, CRLF-framed).
//
// Enough of RFC 7230 for the traffic generator and tokenizer: start line,
// ordered header fields, Content-Length-delimited bodies. No chunked
// transfer coding (the generator always sets Content-Length).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.h"

namespace netfm::http {

/// Ordered list of header fields (order matters for tokenization fidelity).
using Headers = std::vector<std::pair<std::string, std::string>>;

/// Case-insensitive header lookup; returns nullopt if absent.
std::optional<std::string> find_header(const Headers& headers,
                                       std::string_view name);

struct Request {
  std::string method = "GET";
  std::string target = "/";
  std::string version = "HTTP/1.1";
  Headers headers;
  Bytes body;

  /// Serializes with Content-Length appended if a body is present and the
  /// header is missing.
  Bytes encode() const;

  /// Parses one complete request from `wire`; nullopt if the start line or
  /// framing is malformed, or the body is shorter than Content-Length.
  static std::optional<Request> decode(BytesView wire);
};

struct Response {
  std::string version = "HTTP/1.1";
  int status = 200;
  std::string reason = "OK";
  Headers headers;
  Bytes body;

  Bytes encode() const;
  static std::optional<Response> decode(BytesView wire);
};

/// Reason phrase for the status codes the generator emits.
std::string default_reason(int status);

}  // namespace netfm::http
