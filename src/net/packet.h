// Whole-packet model: parse a raw frame into a layered view, or build a
// frame from layer values. This is the boundary between raw captures and
// everything above (tokenizers, flow tracking, generators).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/bytes.h"
#include "net/headers.h"

namespace netfm {

/// Coarse application-layer guess derived from ports + payload shape.
enum class AppProtocol : std::uint8_t {
  kUnknown = 0,
  kDns,
  kHttp,
  kTls,
  kNtp,
  kSmtp,
  kImap,
  kSsh,
  kQuic,
};

/// A captured/generated packet: wall-clock timestamp + raw frame bytes.
struct Packet {
  double timestamp = 0.0;  // seconds since trace start
  Bytes frame;             // Ethernet frame
};

/// Fully parsed layered view of one frame. Spans borrow from the frame
/// passed to `parse_packet`, so the view must not outlive those bytes.
struct ParsedPacket {
  EthernetHeader eth;
  std::optional<Ipv4Header> ipv4;
  std::optional<Ipv6Header> ipv6;
  std::optional<TcpHeader> tcp;
  std::optional<UdpHeader> udp;
  std::optional<IcmpHeader> icmp;
  BytesView l4_payload;  // application bytes (may be empty)
  AppProtocol app = AppProtocol::kUnknown;

  bool has_ip() const noexcept { return ipv4.has_value() || ipv6.has_value(); }
  std::uint16_t src_port() const noexcept;
  std::uint16_t dst_port() const noexcept;
  std::uint8_t ip_protocol() const noexcept;
};

/// Parses the full stack; nullopt if the frame is not Ethernet/IPv4-or-IPv6
/// or a layer is truncated.
std::optional<ParsedPacket> parse_packet(BytesView frame);

/// Infers the application protocol from ports and the first payload bytes.
AppProtocol guess_app(std::uint16_t src_port, std::uint16_t dst_port,
                      BytesView payload) noexcept;

/// Human-readable name ("dns", "http", ...).
std::string_view app_name(AppProtocol app) noexcept;

/// Frame builders used by the traffic generator. All compute lengths and
/// checksums; `ip` fields other than total_length/protocol are honored.
Bytes build_tcp_frame(const MacAddr& src_mac, const MacAddr& dst_mac,
                      Ipv4Header ip, TcpHeader tcp, BytesView payload);
Bytes build_udp_frame(const MacAddr& src_mac, const MacAddr& dst_mac,
                      Ipv4Header ip, UdpHeader udp, BytesView payload);
Bytes build_icmp_frame(const MacAddr& src_mac, const MacAddr& dst_mac,
                       Ipv4Header ip, IcmpHeader icmp, BytesView payload);

}  // namespace netfm
