#include "net/pcap.h"

#include <cmath>

#include "common/fileio.h"
#include "common/metrics.h"

namespace netfm {
namespace {

constexpr std::uint32_t kMagicBigEndian = 0xa1b2c3d4;   // as we write (BE)
constexpr std::uint32_t kMagicLittleEndian = 0xd4c3b2a1;
constexpr std::uint32_t kLinkTypeEthernet = 1;

/// Little-endian reader shim over ByteReader (pcap is host-endian; we must
/// handle both byte orders based on the magic).
struct EndianReader {
  ByteReader& r;
  bool swap;  // true when file byte order differs from big-endian reads

  std::uint32_t u32() {
    const std::uint32_t v = r.u32();
    if (!swap) return v;
    return ((v & 0x000000ff) << 24) | ((v & 0x0000ff00) << 8) |
           ((v & 0x00ff0000) >> 8) | ((v & 0xff000000) >> 24);
  }
  std::uint16_t u16() {
    const std::uint16_t v = r.u16();
    if (!swap) return v;
    return static_cast<std::uint16_t>(((v & 0x00ff) << 8) | (v >> 8));
  }
};

}  // namespace

Bytes pcap_encode(const std::vector<Packet>& packets) {
  ByteWriter w;
  w.u32(kMagicBigEndian);
  w.u16(2);  // major
  w.u16(4);  // minor
  w.u32(0);  // thiszone
  w.u32(0);  // sigfigs
  w.u32(kPcapSnapLen);
  w.u32(kLinkTypeEthernet);
  for (const Packet& pkt : packets) {
    const double whole = std::floor(pkt.timestamp);
    const auto secs = static_cast<std::uint32_t>(whole);
    const auto usecs =
        static_cast<std::uint32_t>((pkt.timestamp - whole) * 1e6 + 0.5);
    w.u32(secs);
    w.u32(usecs >= 1000000 ? 999999 : usecs);
    w.u32(static_cast<std::uint32_t>(pkt.frame.size()));  // incl_len
    w.u32(static_cast<std::uint32_t>(pkt.frame.size()));  // orig_len
    w.raw(BytesView{pkt.frame});
  }
  static const auto c = metrics::counter("net.pcap.packets_encoded");
  c.add(packets.size());
  return w.take();
}

std::optional<std::vector<Packet>> pcap_decode(BytesView data) {
  ByteReader r(data);
  const std::uint32_t magic = r.u32();
  bool swap = false;
  if (magic == kMagicBigEndian) {
    swap = false;
  } else if (magic == kMagicLittleEndian) {
    swap = true;
  } else {
    return std::nullopt;
  }
  EndianReader er{r, swap};
  er.u16();  // major
  er.u16();  // minor
  er.u32();  // thiszone
  er.u32();  // sigfigs
  er.u32();  // snaplen (advisory; we clamp against kPcapSnapLen regardless)
  const std::uint32_t link = er.u32();
  if (r.truncated() || link != kLinkTypeEthernet) return std::nullopt;

  static const auto c_skipped = metrics::counter("net.pcap.records_skipped");
  std::vector<Packet> packets;
  while (r.remaining() >= 16) {
    const std::uint32_t secs = er.u32();
    const std::uint32_t usecs = er.u32();
    const std::uint32_t incl = er.u32();
    const std::uint32_t orig = er.u32();
    // A corrupt 4-byte length field must never drive a multi-GB
    // allocation or an over-read: clamp incl_len against the snap length
    // and the bytes actually present before touching the record.
    if (incl > kPcapSnapLen || incl > r.remaining()) {
      c_skipped.add();
      break;  // cannot resync past a lying length: drop the tail
    }
    if (incl > orig) {
      // incl_len/orig_len disagree (captured more than existed): the
      // record framing is still usable, so skip it rather than abort.
      r.skip(incl);
      c_skipped.add();
      continue;
    }
    const BytesView frame = r.take(incl);
    Packet pkt;
    pkt.timestamp = static_cast<double>(secs) + usecs * 1e-6;
    pkt.frame.assign(frame.begin(), frame.end());
    packets.push_back(std::move(pkt));
  }
  static const auto c = metrics::counter("net.pcap.packets_decoded");
  c.add(packets.size());
  return packets;
}

bool pcap_write_file(const std::string& path,
                     const std::vector<Packet>& packets) {
  const Bytes data = pcap_encode(packets);
  return io::write_file_atomic(path, BytesView{data});
}

std::optional<std::vector<Packet>> pcap_read_file(const std::string& path) {
  const auto data = io::read_file(path);
  if (!data) return std::nullopt;
  return pcap_decode(BytesView{*data});
}

}  // namespace netfm
