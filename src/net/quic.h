// QUIC long-header packet codec (RFC 9000), scoped to what passive
// analysis sees before encryption wins: version, DCID/SCID, and packet
// type of long-header packets (Initial/Handshake), plus opaque
// short-header recognition. Enough to tokenize and classify QUIC flows.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.h"

namespace netfm::quic {

enum class PacketType : std::uint8_t {
  kInitial = 0,
  kZeroRtt = 1,
  kHandshake = 2,
  kRetry = 3,
  kShortHeader = 0xff,  // 1-RTT; carries no visible metadata
};

/// Parsed view of a long-header packet (or the fact of a short header).
struct Header {
  PacketType type = PacketType::kInitial;
  std::uint32_t version = 0x00000001;  // QUIC v1
  Bytes dcid;
  Bytes scid;
  std::size_t payload_length = 0;  // from the length field (Initial/0RTT/HS)

  bool is_long_header() const noexcept {
    return type != PacketType::kShortHeader;
  }
};

/// Encodes a long-header packet with the given payload (already
/// "protected" — we model it as opaque bytes).
Bytes encode_long_header(const Header& header, BytesView payload);

/// Encodes a short-header (1-RTT) packet.
Bytes encode_short_header(BytesView dcid, BytesView payload);

/// Decodes the invariant header fields; nullopt on truncation/garbage.
/// Short-header packets yield type kShortHeader with empty cids (their
/// DCID length is connection state we don't track).
std::optional<Header> decode(BytesView datagram);

/// QUIC variable-length integer codec (RFC 9000 §16).
void write_varint(ByteWriter& w, std::uint64_t value);
std::optional<std::uint64_t> read_varint(ByteReader& r);

}  // namespace netfm::quic
