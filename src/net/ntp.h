// NTPv4 packet codec (RFC 5905 fixed 48-byte header, no extensions).
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.h"

namespace netfm::ntp {

enum class Mode : std::uint8_t {
  kSymmetricActive = 1,
  kSymmetricPassive = 2,
  kClient = 3,
  kServer = 4,
  kBroadcast = 5,
};

struct Packet {
  std::uint8_t leap = 0;
  std::uint8_t version = 4;
  Mode mode = Mode::kClient;
  std::uint8_t stratum = 0;
  std::int8_t poll = 6;
  std::int8_t precision = -20;
  std::uint32_t root_delay = 0;
  std::uint32_t root_dispersion = 0;
  std::uint32_t reference_id = 0;
  std::uint64_t reference_ts = 0;
  std::uint64_t origin_ts = 0;
  std::uint64_t receive_ts = 0;
  std::uint64_t transmit_ts = 0;

  static constexpr std::size_t kWireSize = 48;
  Bytes encode() const;
  static std::optional<Packet> decode(BytesView wire);
};

/// Converts seconds-since-epoch (with fraction) into NTP 32.32 fixed point.
std::uint64_t to_ntp_timestamp(double unix_seconds) noexcept;

}  // namespace netfm::ntp
