#include "net/quic.h"

namespace netfm::quic {

void write_varint(ByteWriter& w, std::uint64_t value) {
  if (value < 0x40) {
    w.u8(static_cast<std::uint8_t>(value));
  } else if (value < 0x4000) {
    w.u16(static_cast<std::uint16_t>(value | 0x4000));
  } else if (value < 0x40000000) {
    w.u32(static_cast<std::uint32_t>(value) | 0x80000000u);
  } else {
    w.u64(value | 0xc000000000000000ULL);
  }
}

std::optional<std::uint64_t> read_varint(ByteReader& r) {
  const std::uint8_t first = r.u8();
  if (r.truncated()) return std::nullopt;
  const int length = 1 << (first >> 6);
  std::uint64_t value = first & 0x3f;
  for (int i = 1; i < length; ++i) {
    value = (value << 8) | r.u8();
    if (r.truncated()) return std::nullopt;
  }
  return value;
}

Bytes encode_long_header(const Header& header, BytesView payload) {
  ByteWriter w;
  // Long header: 1 | fixed 1 | type(2) | reserved/pn-length(4 bits).
  w.u8(static_cast<std::uint8_t>(
      0xc0 | (static_cast<std::uint8_t>(header.type) << 4)));
  w.u32(header.version);
  w.u8(static_cast<std::uint8_t>(header.dcid.size()));
  w.raw(BytesView{header.dcid});
  w.u8(static_cast<std::uint8_t>(header.scid.size()));
  w.raw(BytesView{header.scid});
  if (header.type == PacketType::kInitial)
    write_varint(w, 0);  // empty token
  if (header.type != PacketType::kRetry)
    write_varint(w, payload.size());
  w.raw(payload);
  return w.take();
}

Bytes encode_short_header(BytesView dcid, BytesView payload) {
  ByteWriter w;
  w.u8(0x40);  // fixed bit set, short header
  w.raw(dcid);
  w.raw(payload);
  return w.take();
}

std::optional<Header> decode(BytesView datagram) {
  ByteReader r(datagram);
  const std::uint8_t first = r.u8();
  if (r.truncated()) return std::nullopt;
  if ((first & 0x40) == 0) return std::nullopt;  // fixed bit must be set

  Header h;
  if ((first & 0x80) == 0) {
    h.type = PacketType::kShortHeader;
    h.payload_length = datagram.size() - 1;
    return h;
  }
  h.type = static_cast<PacketType>((first >> 4) & 0x03);
  h.version = r.u32();
  const std::uint8_t dcid_len = r.u8();
  if (dcid_len > 20) return std::nullopt;
  const BytesView dcid = r.take(dcid_len);
  const std::uint8_t scid_len = r.u8();
  if (scid_len > 20) return std::nullopt;
  const BytesView scid = r.take(scid_len);
  if (r.truncated()) return std::nullopt;
  h.dcid.assign(dcid.begin(), dcid.end());
  h.scid.assign(scid.begin(), scid.end());

  if (h.type == PacketType::kInitial) {
    const auto token_length = read_varint(r);
    if (!token_length) return std::nullopt;
    // A varint can claim up to 2^62 bytes; reject a token the datagram
    // cannot contain instead of latching the truncation flag late.
    if (*token_length > r.remaining()) return std::nullopt;
    r.skip(static_cast<std::size_t>(*token_length));
  }
  if (h.type != PacketType::kRetry) {
    const auto length = read_varint(r);
    if (!length) return std::nullopt;
    h.payload_length = static_cast<std::size_t>(*length);
    if (h.payload_length > r.remaining()) return std::nullopt;
  }
  if (r.truncated()) return std::nullopt;
  return h;
}

}  // namespace netfm::quic
