#include "net/anonymize.h"

#include <numeric>

#include "common/rng.h"

namespace netfm {
namespace {

/// L3 offset within an Ethernet frame.
constexpr std::size_t kL3 = EthernetHeader::kWireSize;

std::uint64_t mix(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t x = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

TraceAnonymizer::TraceAnonymizer(AnonymizeOptions options)
    : options_(options) {}

std::uint8_t TraceAnonymizer::permute_octet(std::uint8_t octet,
                                            std::uint64_t prefix_key) const {
  // Fisher-Yates permutation of 0..255 seeded by (key, prefix).
  Rng rng(mix(options_.key, prefix_key));
  std::array<std::uint8_t, 256> table;
  std::iota(table.begin(), table.end(), 0);
  for (std::size_t i = 255; i > 0; --i) {
    const std::size_t j = rng.uniform(i + 1);
    std::swap(table[i], table[j]);
  }
  return table[octet];
}

Ipv4Addr TraceAnonymizer::anonymize(Ipv4Addr addr) const {
  std::uint32_t out = 0;
  std::uint64_t prefix_key = 0x1a2b;
  for (int shift = 24; shift >= 0; shift -= 8) {
    const auto octet = static_cast<std::uint8_t>(addr.value >> shift);
    const std::uint8_t mapped = permute_octet(octet, prefix_key);
    out = (out << 8) | mapped;
    // Condition the next level on the ORIGINAL prefix so equal original
    // prefixes keep mapping identically.
    prefix_key = mix(prefix_key, octet + 1);
  }
  return Ipv4Addr{out};
}

MacAddr TraceAnonymizer::anonymize(const MacAddr& mac) const {
  MacAddr out;
  out.octets[0] = 0x06;  // locally administered, unicast; OUI erased
  std::uint64_t prefix_key = 0x3c4d;
  for (std::size_t i = 1; i < 6; ++i) {
    out.octets[i] = permute_octet(mac.octets[i], prefix_key + i * 131);
    prefix_key = mix(prefix_key, mac.octets[i] + 1);
  }
  return out;
}

bool TraceAnonymizer::anonymize_frame(Bytes& frame) const {
  const auto parsed = parse_packet(BytesView{frame});
  if (!parsed || !parsed->ipv4) return false;
  const Ipv4Header& ip = *parsed->ipv4;
  const std::size_t ihl = ip.header_length();
  if (frame.size() < kL3 + ihl) return false;

  // MACs.
  const MacAddr dst_mac = anonymize(parsed->eth.dst);
  const MacAddr src_mac = anonymize(parsed->eth.src);
  std::copy(dst_mac.octets.begin(), dst_mac.octets.end(), frame.begin());
  std::copy(src_mac.octets.begin(), src_mac.octets.end(), frame.begin() + 6);

  // IPs (offsets 12 and 16 within the IPv4 header).
  const Ipv4Addr src = anonymize(ip.src);
  const Ipv4Addr dst = anonymize(ip.dst);
  auto put_u32 = [&](std::size_t at, std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      frame[at + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(v >> (24 - 8 * i));
  };
  put_u32(kL3 + 12, src.value);
  put_u32(kL3 + 16, dst.value);

  // Optional payload scrub: keyed noise of the same length, so sizes and
  // timing survive but content does not.
  const std::size_t l4_at = kL3 + ihl;
  std::size_t payload_at = 0;
  if (parsed->tcp)
    payload_at = l4_at + parsed->tcp->header_length();
  else if (parsed->udp)
    payload_at = l4_at + UdpHeader::kWireSize;
  if (options_.scrub_payloads && payload_at > 0 &&
      payload_at < frame.size()) {
    Rng noise(mix(options_.key, mix(src.value, dst.value)));
    for (std::size_t i = payload_at; i < frame.size(); ++i)
      frame[i] = static_cast<std::uint8_t>(noise.next());
  }

  // Recompute the IPv4 header checksum.
  frame[kL3 + 10] = 0;
  frame[kL3 + 11] = 0;
  const std::uint16_t ip_sum =
      internet_checksum(BytesView{frame}.subspan(kL3, ihl));
  frame[kL3 + 10] = static_cast<std::uint8_t>(ip_sum >> 8);
  frame[kL3 + 11] = static_cast<std::uint8_t>(ip_sum);

  // Recompute the L4 checksum over the rewritten pseudo-header/payload.
  const std::size_t l4_len = frame.size() - l4_at;
  Ipv4Header pseudo = ip;
  pseudo.src = src;
  pseudo.dst = dst;
  if (parsed->tcp && l4_len >= 18) {
    frame[l4_at + 16] = 0;
    frame[l4_at + 17] = 0;
    const std::uint16_t sum = l4_checksum_ipv4(
        pseudo, IpProto::kTcp, BytesView{frame}.subspan(l4_at, l4_len));
    frame[l4_at + 16] = static_cast<std::uint8_t>(sum >> 8);
    frame[l4_at + 17] = static_cast<std::uint8_t>(sum);
  } else if (parsed->udp && l4_len >= 8) {
    frame[l4_at + 6] = 0;
    frame[l4_at + 7] = 0;
    std::uint16_t sum = l4_checksum_ipv4(
        pseudo, IpProto::kUdp, BytesView{frame}.subspan(l4_at, l4_len));
    if (sum == 0) sum = 0xffff;
    frame[l4_at + 6] = static_cast<std::uint8_t>(sum >> 8);
    frame[l4_at + 7] = static_cast<std::uint8_t>(sum);
  }
  return true;
}

std::size_t TraceAnonymizer::anonymize_trace(
    std::vector<Packet>& packets) const {
  std::size_t rewritten = 0;
  for (Packet& pkt : packets)
    if (anonymize_frame(pkt.frame)) ++rewritten;
  return rewritten;
}

}  // namespace netfm
