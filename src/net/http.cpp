#include "net/http.h"

#include <charconv>

#include "common/strings.h"

namespace netfm::http {
namespace {

constexpr std::string_view kCrlf = "\r\n";

/// Splits `wire` into (head lines, body view); nullopt without CRLFCRLF.
struct Framed {
  std::vector<std::string> lines;
  BytesView body;
};

// Mirrors common proxy limits; a message head with more lines than this is
// hostile, not HTTP, and rejecting it bounds per-line string overhead.
constexpr std::size_t kMaxHeaderLines = 1024;

std::optional<Framed> frame(BytesView wire) {
  const std::string_view text(reinterpret_cast<const char*>(wire.data()),
                              wire.size());
  const std::size_t head_end = text.find("\r\n\r\n");
  if (head_end == std::string_view::npos) return std::nullopt;
  Framed out;
  std::string_view head = text.substr(0, head_end);
  while (!head.empty()) {
    if (out.lines.size() >= kMaxHeaderLines) return std::nullopt;
    const std::size_t eol = head.find(kCrlf);
    if (eol == std::string_view::npos) {
      out.lines.emplace_back(head);
      break;
    }
    out.lines.emplace_back(head.substr(0, eol));
    head.remove_prefix(eol + 2);
  }
  out.body = wire.subspan(head_end + 4);
  return out;
}

std::optional<Headers> parse_headers(const std::vector<std::string>& lines) {
  Headers headers;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::size_t colon = lines[i].find(':');
    if (colon == std::string::npos) return std::nullopt;
    std::string name = lines[i].substr(0, colon);
    std::string value(trim(std::string_view(lines[i]).substr(colon + 1)));
    if (name.empty()) return std::nullopt;
    headers.emplace_back(std::move(name), std::move(value));
  }
  return headers;
}

std::optional<std::size_t> content_length(const Headers& headers) {
  const auto value = find_header(headers, "content-length");
  if (!value) return std::nullopt;
  std::size_t n = 0;
  const auto [ptr, ec] =
      std::from_chars(value->data(), value->data() + value->size(), n);
  if (ec != std::errc{} || ptr != value->data() + value->size())
    return std::nullopt;
  return n;
}

void encode_headers(ByteWriter& w, const Headers& headers,
                    std::size_t body_size) {
  bool wrote_length = false;
  for (const auto& [name, value] : headers) {
    w.raw(name);
    w.raw(": ");
    w.raw(value);
    w.raw(kCrlf);
    if (to_lower(name) == "content-length") wrote_length = true;
  }
  if (!wrote_length && body_size > 0) {
    w.raw("Content-Length: ");
    w.raw(std::to_string(body_size));
    w.raw(kCrlf);
  }
  w.raw(kCrlf);
}

}  // namespace

std::optional<std::string> find_header(const Headers& headers,
                                       std::string_view name) {
  const std::string wanted = to_lower(name);
  for (const auto& [key, value] : headers)
    if (to_lower(key) == wanted) return value;
  return std::nullopt;
}

Bytes Request::encode() const {
  ByteWriter w;
  w.raw(method);
  w.raw(" ");
  w.raw(target);
  w.raw(" ");
  w.raw(version);
  w.raw(kCrlf);
  encode_headers(w, headers, body.size());
  w.raw(BytesView{body});
  return w.take();
}

std::optional<Request> Request::decode(BytesView wire) {
  const auto framed = frame(wire);
  if (!framed || framed->lines.empty()) return std::nullopt;
  const auto start = split(framed->lines[0], ' ');
  if (start.size() != 3) return std::nullopt;
  Request req;
  req.method = start[0];
  req.target = start[1];
  req.version = start[2];
  if (!starts_with(req.version, "HTTP/")) return std::nullopt;
  auto headers = parse_headers(framed->lines);
  if (!headers) return std::nullopt;
  req.headers = std::move(*headers);
  if (const auto len = content_length(req.headers)) {
    if (framed->body.size() < *len) return std::nullopt;
    req.body.assign(framed->body.begin(), framed->body.begin() + *len);
  } else {
    req.body.assign(framed->body.begin(), framed->body.end());
  }
  return req;
}

Bytes Response::encode() const {
  ByteWriter w;
  w.raw(version);
  w.raw(" ");
  w.raw(std::to_string(status));
  w.raw(" ");
  w.raw(reason);
  w.raw(kCrlf);
  encode_headers(w, headers, body.size());
  w.raw(BytesView{body});
  return w.take();
}

std::optional<Response> Response::decode(BytesView wire) {
  const auto framed = frame(wire);
  if (!framed || framed->lines.empty()) return std::nullopt;
  const std::string& line = framed->lines[0];
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos) return std::nullopt;
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  Response resp;
  resp.version = line.substr(0, sp1);
  if (!starts_with(resp.version, "HTTP/")) return std::nullopt;
  const std::string code =
      sp2 == std::string::npos ? line.substr(sp1 + 1)
                               : line.substr(sp1 + 1, sp2 - sp1 - 1);
  const auto [ptr, ec] =
      std::from_chars(code.data(), code.data() + code.size(), resp.status);
  if (ec != std::errc{} || ptr != code.data() + code.size())
    return std::nullopt;
  resp.reason = sp2 == std::string::npos ? std::string{} : line.substr(sp2 + 1);
  auto headers = parse_headers(framed->lines);
  if (!headers) return std::nullopt;
  resp.headers = std::move(*headers);
  if (const auto len = content_length(resp.headers)) {
    if (framed->body.size() < *len) return std::nullopt;
    resp.body.assign(framed->body.begin(), framed->body.begin() + *len);
  } else {
    resp.body.assign(framed->body.begin(), framed->body.end());
  }
  return resp;
}

std::string default_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 301: return "Moved Permanently";
    case 302: return "Found";
    case 304: return "Not Modified";
    case 400: return "Bad Request";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

}  // namespace netfm::http
