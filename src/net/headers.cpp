#include "net/headers.h"

namespace netfm {

std::optional<EthernetHeader> EthernetHeader::parse(ByteReader& reader) {
  EthernetHeader h;
  for (auto& b : h.dst.octets) b = reader.u8();
  for (auto& b : h.src.octets) b = reader.u8();
  h.ether_type = reader.u16();
  if (reader.truncated()) return std::nullopt;
  return h;
}

void EthernetHeader::write(ByteWriter& writer) const {
  for (std::uint8_t b : dst.octets) writer.u8(b);
  for (std::uint8_t b : src.octets) writer.u8(b);
  writer.u16(ether_type);
}

std::optional<Ipv4Header> Ipv4Header::parse(ByteReader& reader) {
  Ipv4Header h;
  const std::uint8_t version_ihl = reader.u8();
  if ((version_ihl >> 4) != 4) return std::nullopt;
  const std::size_t ihl = static_cast<std::size_t>(version_ihl & 0x0f) * 4;
  if (ihl < 20) return std::nullopt;
  h.dscp_ecn = reader.u8();
  h.total_length = reader.u16();
  h.identification = reader.u16();
  h.flags_fragment = reader.u16();
  h.ttl = reader.u8();
  h.protocol = reader.u8();
  h.checksum = reader.u16();
  h.src.value = reader.u32();
  h.dst.value = reader.u32();
  if (ihl > 20) {
    const BytesView opts = reader.take(ihl - 20);
    h.options.assign(opts.begin(), opts.end());
  }
  if (reader.truncated()) return std::nullopt;
  if (h.total_length < ihl) return std::nullopt;
  return h;
}

void Ipv4Header::write(ByteWriter& writer) const {
  ByteWriter head;
  const std::size_t ihl_words = header_length() / 4;
  head.u8(static_cast<std::uint8_t>(0x40 | ihl_words));
  head.u8(dscp_ecn);
  head.u16(total_length);
  head.u16(identification);
  head.u16(flags_fragment);
  head.u8(ttl);
  head.u8(protocol);
  head.u16(0);  // checksum placeholder
  head.u32(src.value);
  head.u32(dst.value);
  head.raw(BytesView{options});
  const std::uint16_t sum = internet_checksum(BytesView{head.bytes()});
  head.patch_u16(10, sum);
  writer.raw(BytesView{head.bytes()});
}

std::uint16_t Ipv4Header::compute_checksum() const {
  ByteWriter head;
  Ipv4Header copy = *this;
  copy.write(head);
  // write() recomputes; extract the stored checksum field.
  return static_cast<std::uint16_t>((head.bytes()[10] << 8) |
                                    head.bytes()[11]);
}

std::optional<Ipv6Header> Ipv6Header::parse(ByteReader& reader) {
  Ipv6Header h;
  const std::uint32_t word = reader.u32();
  if ((word >> 28) != 6) return std::nullopt;
  h.traffic_class = static_cast<std::uint8_t>((word >> 20) & 0xff);
  h.flow_label = word & 0xfffff;
  h.payload_length = reader.u16();
  h.next_header = reader.u8();
  h.hop_limit = reader.u8();
  for (auto& b : h.src.octets) b = reader.u8();
  for (auto& b : h.dst.octets) b = reader.u8();
  if (reader.truncated()) return std::nullopt;
  return h;
}

void Ipv6Header::write(ByteWriter& writer) const {
  writer.u32((std::uint32_t{6} << 28) |
             (static_cast<std::uint32_t>(traffic_class) << 20) |
             (flow_label & 0xfffff));
  writer.u16(payload_length);
  writer.u8(next_header);
  writer.u8(hop_limit);
  for (std::uint8_t b : src.octets) writer.u8(b);
  for (std::uint8_t b : dst.octets) writer.u8(b);
}

std::optional<TcpHeader> TcpHeader::parse(ByteReader& reader) {
  TcpHeader h;
  h.src_port = reader.u16();
  h.dst_port = reader.u16();
  h.seq = reader.u32();
  h.ack = reader.u32();
  const std::uint8_t offset_byte = reader.u8();
  const std::size_t data_offset =
      static_cast<std::size_t>(offset_byte >> 4) * 4;
  if (data_offset < 20) return std::nullopt;
  h.flags = reader.u8() & 0x3f;
  h.window = reader.u16();
  h.checksum = reader.u16();
  h.urgent = reader.u16();
  if (data_offset > 20) {
    const BytesView opts = reader.take(data_offset - 20);
    h.options.assign(opts.begin(), opts.end());
  }
  if (reader.truncated()) return std::nullopt;
  return h;
}

void TcpHeader::write(ByteWriter& writer, const Ipv4Header& ip,
                      BytesView payload) const {
  ByteWriter seg;
  seg.u16(src_port);
  seg.u16(dst_port);
  seg.u32(seq);
  seg.u32(ack);
  seg.u8(static_cast<std::uint8_t>((header_length() / 4) << 4));
  seg.u8(flags);
  seg.u16(window);
  seg.u16(0);  // checksum placeholder
  seg.u16(urgent);
  seg.raw(BytesView{options});
  seg.raw(payload);
  const std::uint16_t sum =
      l4_checksum_ipv4(ip, IpProto::kTcp, BytesView{seg.bytes()});
  seg.patch_u16(16, sum);
  writer.raw(BytesView{seg.bytes()});
}

std::optional<UdpHeader> UdpHeader::parse(ByteReader& reader) {
  UdpHeader h;
  h.src_port = reader.u16();
  h.dst_port = reader.u16();
  h.length = reader.u16();
  h.checksum = reader.u16();
  if (reader.truncated()) return std::nullopt;
  if (h.length < kWireSize) return std::nullopt;
  return h;
}

void UdpHeader::write(ByteWriter& writer, const Ipv4Header& ip,
                      BytesView payload) const {
  ByteWriter seg;
  seg.u16(src_port);
  seg.u16(dst_port);
  seg.u16(static_cast<std::uint16_t>(kWireSize + payload.size()));
  seg.u16(0);  // checksum placeholder
  seg.raw(payload);
  std::uint16_t sum =
      l4_checksum_ipv4(ip, IpProto::kUdp, BytesView{seg.bytes()});
  if (sum == 0) sum = 0xffff;  // RFC 768: 0 means "no checksum"
  seg.patch_u16(6, sum);
  writer.raw(BytesView{seg.bytes()});
}

std::optional<IcmpHeader> IcmpHeader::parse(ByteReader& reader) {
  IcmpHeader h;
  h.type = reader.u8();
  h.code = reader.u8();
  h.checksum = reader.u16();
  h.identifier = reader.u16();
  h.sequence = reader.u16();
  if (reader.truncated()) return std::nullopt;
  return h;
}

void IcmpHeader::write(ByteWriter& writer, BytesView payload) const {
  ByteWriter msg;
  msg.u8(type);
  msg.u8(code);
  msg.u16(0);  // checksum placeholder
  msg.u16(identifier);
  msg.u16(sequence);
  msg.raw(payload);
  msg.patch_u16(2, internet_checksum(BytesView{msg.bytes()}));
  writer.raw(BytesView{msg.bytes()});
}

std::uint16_t l4_checksum_ipv4(const Ipv4Header& ip, IpProto proto,
                               BytesView l4_bytes) {
  ByteWriter pseudo;
  pseudo.u32(ip.src.value);
  pseudo.u32(ip.dst.value);
  pseudo.u8(0);
  pseudo.u8(static_cast<std::uint8_t>(proto));
  pseudo.u16(static_cast<std::uint16_t>(l4_bytes.size()));
  pseudo.raw(l4_bytes);
  return internet_checksum(BytesView{pseudo.bytes()});
}

}  // namespace netfm
