#include "net/ntp.h"

#include <cmath>

namespace netfm::ntp {

Bytes Packet::encode() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>((leap << 6) | ((version & 0x7) << 3) |
                                 (static_cast<std::uint8_t>(mode) & 0x7)));
  w.u8(stratum);
  w.u8(static_cast<std::uint8_t>(poll));
  w.u8(static_cast<std::uint8_t>(precision));
  w.u32(root_delay);
  w.u32(root_dispersion);
  w.u32(reference_id);
  w.u64(reference_ts);
  w.u64(origin_ts);
  w.u64(receive_ts);
  w.u64(transmit_ts);
  return w.take();
}

std::optional<Packet> Packet::decode(BytesView wire) {
  if (wire.size() < kWireSize) return std::nullopt;
  ByteReader r(wire);
  Packet p;
  const std::uint8_t first = r.u8();
  p.leap = first >> 6;
  p.version = (first >> 3) & 0x7;
  p.mode = static_cast<Mode>(first & 0x7);
  p.stratum = r.u8();
  p.poll = static_cast<std::int8_t>(r.u8());
  p.precision = static_cast<std::int8_t>(r.u8());
  p.root_delay = r.u32();
  p.root_dispersion = r.u32();
  p.reference_id = r.u32();
  p.reference_ts = r.u64();
  p.origin_ts = r.u64();
  p.receive_ts = r.u64();
  p.transmit_ts = r.u64();
  if (r.truncated()) return std::nullopt;
  return p;
}

std::uint64_t to_ntp_timestamp(double unix_seconds) noexcept {
  // NTP era 0 starts 1900-01-01; Unix epoch is 2208988800s later.
  constexpr double kEraOffset = 2208988800.0;
  const double total = unix_seconds + kEraOffset;
  const double whole = std::floor(total);
  const double frac = total - whole;
  return (static_cast<std::uint64_t>(whole) << 32) |
         static_cast<std::uint64_t>(frac * 4294967296.0);
}

}  // namespace netfm::ntp
