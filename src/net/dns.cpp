#include "net/dns.h"

#include "common/strings.h"

namespace netfm::dns {
namespace {

constexpr std::size_t kMaxNameLength = 255;
constexpr int kMaxPointerHops = 32;

/// Encodes `name` into `out`, compressing against `offsets`. `base` is the
/// absolute message offset where `out`'s current position will land, so
/// recorded suffix offsets remain message-relative.
void encode_name_at(ByteWriter& out, const std::string& name,
                    std::size_t base,
                    std::vector<std::pair<std::string, std::size_t>>& offsets) {
  std::string rest = to_lower(name);
  while (!rest.empty()) {
    for (const auto& [suffix, off] : offsets) {
      if (rest == suffix && off < 0x3fff) {
        out.u16(static_cast<std::uint16_t>(0xc000 | off));
        return;
      }
    }
    offsets.emplace_back(rest, base + out.size());
    const std::size_t dot = rest.find('.');
    const std::string label =
        dot == std::string::npos ? rest : rest.substr(0, dot);
    out.u8(static_cast<std::uint8_t>(label.size()));
    out.raw(label);
    rest = dot == std::string::npos ? std::string{} : rest.substr(dot + 1);
  }
  out.u8(0);
}

/// Encodes RDATA for the known types, using name compression for the
/// name-bearing ones. `rdata_offset` is the absolute message offset where
/// the RDATA begins.
Bytes encode_rdata(const ResourceRecord& rr, std::size_t rdata_offset,
                   std::vector<std::pair<std::string, std::size_t>>& offsets) {
  ByteWriter w;
  switch (static_cast<Type>(rr.type)) {
    case Type::kA:
    case Type::kAaaa:
      return rr.rdata;  // stored as raw address bytes
    case Type::kCname:
    case Type::kNs:
    case Type::kPtr: {
      encode_name_at(w, rr.rdata_name, rdata_offset, offsets);
      return w.take();
    }
    case Type::kMx: {
      w.u16(rr.preference);
      ByteWriter name_writer;
      encode_name_at(name_writer, rr.rdata_name, rdata_offset + 2, offsets);
      w.raw(BytesView{name_writer.bytes()});
      return w.take();
    }
    case Type::kTxt: {
      // Single character-string chunking at 255 bytes.
      std::string_view text = rr.rdata_name;
      while (text.size() > 255) {
        w.u8(255);
        w.raw(text.substr(0, 255));
        text.remove_prefix(255);
      }
      w.u8(static_cast<std::uint8_t>(text.size()));
      w.raw(text);
      return w.take();
    }
    default:
      return rr.rdata;
  }
}

/// Decodes RDATA convenience fields for known types.
void decode_rdata(ResourceRecord& rr, BytesView message, std::size_t at,
                  std::size_t len) {
  switch (static_cast<Type>(rr.type)) {
    case Type::kCname:
    case Type::kNs:
    case Type::kPtr: {
      ByteReader r(message);
      r.skip(at);
      if (auto name = decode_name(r)) rr.rdata_name = *name;
      break;
    }
    case Type::kMx: {
      ByteReader r(message);
      r.skip(at);
      rr.preference = r.u16();
      if (auto name = decode_name(r)) rr.rdata_name = *name;
      break;
    }
    case Type::kTxt: {
      ByteReader r(message);
      r.skip(at);
      std::size_t consumed = 0;
      std::string text;
      while (consumed < len) {
        const std::uint8_t chunk = r.u8();
        if (consumed + 1 + chunk > len) break;  // chunk lies past RDLENGTH
        text += r.take_string(chunk);
        consumed += 1 + chunk;
        if (r.truncated()) break;
      }
      rr.rdata_name = text;
      break;
    }
    default:
      break;
  }
}

void encode_record(ByteWriter& w, const ResourceRecord& rr,
                   std::vector<std::pair<std::string, std::size_t>>& offsets) {
  encode_name(w, rr.name, offsets);
  w.u16(rr.type);
  w.u16(rr.klass);
  w.u32(rr.ttl);
  const std::size_t len_at = w.size();
  w.u16(0);  // RDLENGTH placeholder
  const Bytes rdata = encode_rdata(rr, w.size(), offsets);
  w.raw(BytesView{rdata});
  w.patch_u16(len_at, static_cast<std::uint16_t>(rdata.size()));
}

std::optional<ResourceRecord> decode_record(ByteReader& r, BytesView wire) {
  ResourceRecord rr;
  auto name = decode_name(r);
  if (!name) return std::nullopt;
  rr.name = *name;
  rr.type = r.u16();
  rr.klass = r.u16();
  rr.ttl = r.u32();
  const std::uint16_t rdlen = r.u16();
  const std::size_t rdata_at = r.offset();
  const BytesView raw = r.take(rdlen);
  if (r.truncated()) return std::nullopt;
  rr.rdata.assign(raw.begin(), raw.end());
  decode_rdata(rr, wire, rdata_at, rdlen);
  return rr;
}

}  // namespace

ResourceRecord ResourceRecord::a(std::string name, Ipv4Addr addr,
                                 std::uint32_t ttl) {
  ResourceRecord rr;
  rr.name = std::move(name);
  rr.type = static_cast<std::uint16_t>(Type::kA);
  rr.ttl = ttl;
  ByteWriter w;
  w.u32(addr.value);
  rr.rdata = w.take();
  return rr;
}

ResourceRecord ResourceRecord::aaaa(std::string name, const Ipv6Addr& addr,
                                    std::uint32_t ttl) {
  ResourceRecord rr;
  rr.name = std::move(name);
  rr.type = static_cast<std::uint16_t>(Type::kAaaa);
  rr.ttl = ttl;
  rr.rdata.assign(addr.octets.begin(), addr.octets.end());
  return rr;
}

ResourceRecord ResourceRecord::cname(std::string name, std::string target,
                                     std::uint32_t ttl) {
  ResourceRecord rr;
  rr.name = std::move(name);
  rr.type = static_cast<std::uint16_t>(Type::kCname);
  rr.ttl = ttl;
  rr.rdata_name = std::move(target);
  return rr;
}

void encode_name(ByteWriter& writer, const std::string& name,
                 std::vector<std::pair<std::string, std::size_t>>& offsets) {
  encode_name_at(writer, name, 0, offsets);
}

std::optional<std::string> decode_name(ByteReader& reader) {
  std::string out;
  int hops = 0;
  bool jumped = false;
  std::size_t cursor = reader.offset();
  // We track our own cursor so that after following compression pointers we
  // can restore the reader just past the *first* pointer.
  std::size_t resume_at = 0;
  while (true) {
    const BytesView len_view = reader.peek_at(cursor, 1);
    if (len_view.empty()) return std::nullopt;
    const std::uint8_t len = len_view[0];
    if ((len & 0xc0) == 0xc0) {
      const BytesView ptr_view = reader.peek_at(cursor, 2);
      if (ptr_view.size() < 2) return std::nullopt;
      if (!jumped) resume_at = cursor + 2;
      jumped = true;
      if (++hops > kMaxPointerHops) return std::nullopt;
      const auto target =
          static_cast<std::size_t>(((len & 0x3f) << 8) | ptr_view[1]);
      // Compression pointers always reference an earlier occurrence
      // (RFC 1035 §4.1.4). Requiring strictly-backward jumps makes the
      // cursor a decreasing sequence, so a crafted self-referential or
      // cyclic pointer chain terminates immediately instead of burning
      // through the hop budget. The hop cap stays as a belt to the
      // suspenders; kMaxNameLength bounds the expanded output.
      if (target >= cursor) return std::nullopt;
      cursor = target;
      continue;
    }
    if ((len & 0xc0) != 0) return std::nullopt;  // 10/01 prefixes reserved
    if (len == 0) {
      ++cursor;
      break;
    }
    const BytesView label = reader.peek_at(cursor + 1, len);
    if (label.size() < len) return std::nullopt;
    if (!out.empty()) out += '.';
    out.append(reinterpret_cast<const char*>(label.data()), label.size());
    if (out.size() > kMaxNameLength) return std::nullopt;
    cursor += 1 + len;
  }
  const std::size_t end = jumped ? resume_at : cursor;
  reader.skip(end - reader.offset());
  return out;
}

Bytes Message::encode() const {
  ByteWriter w;
  w.u16(id);
  std::uint16_t flags = 0;
  if (is_response) flags |= 0x8000;
  flags |= static_cast<std::uint16_t>((opcode & 0x0f) << 11);
  if (authoritative) flags |= 0x0400;
  if (truncated) flags |= 0x0200;
  if (recursion_desired) flags |= 0x0100;
  if (recursion_available) flags |= 0x0080;
  flags |= static_cast<std::uint16_t>(rcode) & 0x0f;
  w.u16(flags);
  w.u16(static_cast<std::uint16_t>(questions.size()));
  w.u16(static_cast<std::uint16_t>(answers.size()));
  w.u16(static_cast<std::uint16_t>(authorities.size()));
  w.u16(static_cast<std::uint16_t>(additionals.size()));

  std::vector<std::pair<std::string, std::size_t>> offsets;
  for (const Question& q : questions) {
    encode_name(w, q.name, offsets);
    w.u16(q.type);
    w.u16(q.klass);
  }
  for (const ResourceRecord& rr : answers) encode_record(w, rr, offsets);
  for (const ResourceRecord& rr : authorities) encode_record(w, rr, offsets);
  for (const ResourceRecord& rr : additionals) encode_record(w, rr, offsets);
  return w.take();
}

std::optional<Message> Message::decode(BytesView wire) {
  ByteReader r(wire);
  Message m;
  m.id = r.u16();
  const std::uint16_t flags = r.u16();
  m.is_response = (flags & 0x8000) != 0;
  m.opcode = static_cast<std::uint8_t>((flags >> 11) & 0x0f);
  m.authoritative = (flags & 0x0400) != 0;
  m.truncated = (flags & 0x0200) != 0;
  m.recursion_desired = (flags & 0x0100) != 0;
  m.recursion_available = (flags & 0x0080) != 0;
  m.rcode = static_cast<Rcode>(flags & 0x0f);
  const std::uint16_t qd = r.u16();
  const std::uint16_t an = r.u16();
  const std::uint16_t ns = r.u16();
  const std::uint16_t ar = r.u16();
  if (r.truncated()) return std::nullopt;

  for (std::uint16_t i = 0; i < qd; ++i) {
    Question q;
    auto name = decode_name(r);
    if (!name) return std::nullopt;
    q.name = *name;
    q.type = r.u16();
    q.klass = r.u16();
    if (r.truncated()) return std::nullopt;
    m.questions.push_back(std::move(q));
  }
  auto decode_section = [&](std::uint16_t count,
                            std::vector<ResourceRecord>& out) -> bool {
    for (std::uint16_t i = 0; i < count; ++i) {
      auto rr = decode_record(r, wire);
      if (!rr) return false;
      out.push_back(std::move(*rr));
    }
    return true;
  };
  if (!decode_section(an, m.answers)) return std::nullopt;
  if (!decode_section(ns, m.authorities)) return std::nullopt;
  if (!decode_section(ar, m.additionals)) return std::nullopt;
  return m;
}

}  // namespace netfm::dns
