// Network address value types (MAC, IPv4, IPv6) with parsing/formatting.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace netfm {

/// 48-bit Ethernet MAC address.
struct MacAddr {
  std::array<std::uint8_t, 6> octets{};

  auto operator<=>(const MacAddr&) const = default;

  /// "aa:bb:cc:dd:ee:ff"
  std::string to_string() const;
  static std::optional<MacAddr> parse(std::string_view text);
  /// Locally-administered unicast MAC derived from a 64-bit id.
  static MacAddr from_id(std::uint64_t id) noexcept;
};

/// IPv4 address stored in host order for arithmetic convenience.
struct Ipv4Addr {
  std::uint32_t value = 0;

  auto operator<=>(const Ipv4Addr&) const = default;

  /// Dotted quad "a.b.c.d".
  std::string to_string() const;
  static std::optional<Ipv4Addr> parse(std::string_view text);
  static constexpr Ipv4Addr from_octets(std::uint8_t a, std::uint8_t b,
                                        std::uint8_t c,
                                        std::uint8_t d) noexcept {
    return Ipv4Addr{(std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                    (std::uint32_t{c} << 8) | d};
  }
};

/// IPv6 address (16 bytes, network order).
struct Ipv6Addr {
  std::array<std::uint8_t, 16> octets{};

  auto operator<=>(const Ipv6Addr&) const = default;

  /// Full (non-compressed) colon-hex form "2001:0db8:...".
  std::string to_string() const;
  static std::optional<Ipv6Addr> parse(std::string_view text);
};

}  // namespace netfm
