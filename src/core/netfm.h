// NetFM — the network foundation model this library exists to provide.
//
// Lifecycle mirrors the paper's pipeline:
//   1. pretrain() on an unlabeled token corpus (masked-token modeling,
//      optionally + next-packet prediction),
//   2. fine_tune() a small labeled set for a downstream task, or
//      embed() frozen features for external classifiers,
//   3. query the learned representation space: nearest_tokens(),
//      analogy() (the NetBERT/NorBERT probes of §3.4).
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "core/data.h"
#include "model/gru.h"
#include "model/heads.h"
#include "nn/serialize.h"

namespace netfm::data {
class CorpusReader;
}

namespace netfm::core {

/// Which pretraining objectives to optimize (§4.1.4).
enum class PretrainTask {
  kMlmOnly,            // masked-token modeling
  kMlmAndNextPacket,   // + next-packet prediction on segment pairs
};

struct PretrainOptions {
  std::size_t steps = 200;
  std::size_t batch_size = 8;
  std::size_t max_seq_len = 48;
  double mask_prob = 0.15;
  float peak_lr = 1e-3f;
  std::size_t warmup_steps = 20;
  PretrainTask task = PretrainTask::kMlmOnly;
  /// Fraction of each batch drawn from segment pairs when the task
  /// includes next-packet prediction.
  double pair_fraction = 0.5;
  /// Field-targeted masking (§4.1.4): tokens whose string starts with one
  /// of these prefixes are masked with `focus_prob` instead of
  /// `mask_prob`, forcing the model to predict those protocol fields from
  /// their context. Empty = uniform BERT masking.
  std::vector<std::string> focus_prefixes;
  double focus_prob = 0.5;
  std::uint64_t seed = 99;
  bool verbose = false;
  /// When `checkpoint_path` is non-empty, a checkpoint (parameters + step)
  /// is written atomically every `checkpoint_every` steps, and a valid
  /// checkpoint found at entry resumes training from its step. Batches are
  /// derived per-step from `seed`, so a resumed run replays the same data
  /// order the uninterrupted run would have seen.
  std::string checkpoint_path;
  std::size_t checkpoint_every = 25;
};

struct FineTuneOptions {
  std::size_t epochs = 8;
  std::size_t batch_size = 8;
  std::size_t max_seq_len = 48;
  float lr = 5e-4f;
  bool freeze_encoder = false;
  /// Keeps the token-embedding table at its pretrained values while the
  /// rest of the encoder adapts. Preserves the pretrained geometry of
  /// tokens that are absent from the fine-tuning set (the cross-site
  /// transfer mechanism of E1).
  bool freeze_token_embeddings = false;
  /// Replaces each non-special input token with [MASK] with this
  /// probability during fine-tuning (training batches only). Prevents the
  /// classifier from keying on a single shortcut token and forces it onto
  /// redundant features — the robust-adaptation recipe §4.1.4 invites.
  double token_dropout = 0.0;
  std::uint64_t seed = 101;
  /// Per-epoch atomic checkpointing + auto-resume (see PretrainOptions;
  /// here `checkpoint_every` counts epochs).
  std::string checkpoint_path;
  std::size_t checkpoint_every = 1;
};

struct TrainLog {
  std::vector<float> losses;  // per logging interval
  double seconds = 0.0;
  std::size_t steps = 0;
  /// Step/epoch a checkpoint restore skipped to (0 = started fresh).
  std::size_t resumed_from = 0;
  /// Optimizer steps skipped because the loss or gradient norm went
  /// non-finite (NaN/Inf detection in the hardened training loops).
  std::size_t nonfinite_skipped = 0;
};

class NetFM {
 public:
  /// Builds an untrained model over the given vocabulary.
  NetFM(tok::Vocabulary vocab, model::TransformerConfig config);

  const tok::Vocabulary& vocab() const noexcept { return vocab_; }
  const model::TransformerConfig& config() const noexcept {
    return encoder_->config();
  }
  const model::TransformerEncoder& encoder() const noexcept {
    return *encoder_;
  }

  /// Self-supervised pretraining over token-string contexts (+ optional
  /// segment pairs for next-packet prediction).
  TrainLog pretrain(const std::vector<std::vector<std::string>>& corpus,
                    const std::vector<ctx::SegmentPair>& pairs,
                    const PretrainOptions& options);

  /// Streaming pretraining over a memory-mapped sharded corpus. Batches
  /// come through a prefetching data::StreamingLoader (NETFM_DATA_PREFETCH
  /// controls the window), so the corpus never has to fit in RAM. Batch
  /// composition and every RNG draw match the in-RAM overload exactly —
  /// the two produce bitwise-identical loss trajectories for the same
  /// (corpus contents, options). Segment pairs stay in-RAM (they are a
  /// small sampled set, not the bulk corpus).
  TrainLog pretrain(const data::CorpusReader& corpus,
                    const std::vector<ctx::SegmentPair>& pairs,
                    const PretrainOptions& options);

  /// Average masked-token cross-entropy (lower = better) on a held-out
  /// corpus; exp() of it is the MLM perplexity.
  double mlm_loss(const std::vector<std::vector<std::string>>& corpus,
                  std::size_t max_seq_len, std::uint64_t seed = 7) const;

  /// Supervised fine-tuning for sequence classification. Replaces any
  /// previous head. Labels are 0..num_classes-1.
  TrainLog fine_tune(const std::vector<std::vector<std::string>>& contexts,
                     std::span<const int> labels, std::size_t num_classes,
                     const FineTuneOptions& options);

  /// Class probabilities from the fine-tuned head (requires fine_tune()).
  std::vector<float> predict_proba(const std::vector<std::string>& context,
                                   std::size_t max_seq_len) const;
  /// Raw classifier logits (requires fine_tune()).
  std::vector<float> predict_logits(const std::vector<std::string>& context,
                                    std::size_t max_seq_len) const;
  int predict(const std::vector<std::string>& context,
              std::size_t max_seq_len) const;

  /// Frozen pooled representation of a context (mean over real tokens of
  /// the final hidden states). Usable with or without fine-tuning.
  std::vector<float> embed(const std::vector<std::string>& context,
                           std::size_t max_seq_len) const;

  /// embed() for many flows at once: pads every context to the same length
  /// (as encode_context already does) and runs them through one batched
  /// no-grad forward instead of one forward per flow. Element-for-element
  /// identical to calling embed() in a loop, just amortizing the per-pass
  /// overhead across the batch.
  std::vector<std::vector<float>> embed_flows(
      std::span<const std::vector<std::string>> contexts,
      std::size_t max_seq_len) const;

  /// Static (context-independent) embedding of one vocabulary token: its
  /// row of the input embedding table.
  std::vector<float> token_vector(std::string_view token) const;

  /// k nearest vocabulary tokens by cosine similarity of token_vector().
  /// Specials and [UNK] are excluded.
  std::vector<std::pair<std::string, double>> nearest_tokens(
      std::string_view token, std::size_t k) const;

  /// Analogy query: returns tokens nearest to (b - a + c), excluding the
  /// inputs — "a is to b as c is to ?".
  std::vector<std::pair<std::string, double>> analogy(
      std::string_view a, std::string_view b, std::string_view c,
      std::size_t k) const;

  /// All trainable parameters (encoder + heads), for checkpointing.
  nn::ParameterList parameters() const;

  bool save(const std::string& path) const;
  /// Loads parameters and (when NETFM_QUANT is on) eagerly re-packs the
  /// int8 weight caches for the freshly loaded weights.
  bool load(const std::string& path);

  /// Eagerly packs all int8 weight caches (no-op when quant is off).
  void prequantize() const;

 private:
  /// Shared step loop behind both pretrain overloads. `fetch(step,
  /// indices)` returns the encoded context rows for that step, in the
  /// order data::batch_indices names them; pairs ride along in RAM.
  TrainLog pretrain_impl(
      std::size_t corpus_size,
      const std::function<std::vector<Encoded>(
          std::size_t, std::span<const std::size_t>)>& fetch,
      const std::vector<ctx::SegmentPair>& pairs,
      const PretrainOptions& options);

  nn::Tensor forward_pooled(const model::Batch& batch, bool train) const;

  tok::Vocabulary vocab_;
  std::unique_ptr<model::TransformerEncoder> encoder_;
  std::unique_ptr<model::MlmHead> mlm_head_;
  std::unique_ptr<model::Pooler> pooler_;
  std::unique_ptr<model::NextSegmentHead> next_segment_head_;
  std::unique_ptr<model::ClassificationHead> classifier_;
  mutable Rng rng_;
};

}  // namespace netfm::core
