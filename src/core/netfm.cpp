#include "core/netfm.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <stdexcept>

#include "common/fault.h"
#include "common/metrics.h"
#include "data/corpus.h"
#include "data/loader.h"

namespace netfm::core {

using model::Batch;
using nn::Tensor;

namespace {

double seconds_since(
    const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Per-step batch RNG, shared with the data layer so the streaming loader
// can compose the same batches ahead of time (see data/loader.h).
using data::step_rng;

/// Pairs per batch for a given configuration (0 when the task or the pair
/// set disables them). Hoisted out of the step loop because the streaming
/// loader needs the per-step context count up front.
std::size_t pairs_per_batch(const PretrainOptions& options, bool use_pairs) {
  if (!use_pairs) return 0;
  return static_cast<std::size_t>(
      options.pair_fraction * static_cast<double>(options.batch_size) + 0.5);
}

double cosine(std::span<const float> a, std::span<const float> b) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

}  // namespace

NetFM::NetFM(tok::Vocabulary vocab, model::TransformerConfig config)
    : vocab_(std::move(vocab)), rng_(config.seed ^ 0xfeedULL) {
  config.vocab_size = vocab_.size();
  encoder_ = std::make_unique<model::TransformerEncoder>(config);
  Rng head_rng(config.seed + 1);
  mlm_head_ = std::make_unique<model::MlmHead>(
      encoder_->config(), encoder_->token_embeddings(), head_rng);
  pooler_ = std::make_unique<model::Pooler>(config.d_model, head_rng);
  next_segment_head_ =
      std::make_unique<model::NextSegmentHead>(config.d_model, head_rng);
}

TrainLog NetFM::pretrain(const std::vector<std::vector<std::string>>& corpus,
                         const std::vector<ctx::SegmentPair>& pairs,
                         const PretrainOptions& options) {
  if (corpus.empty())
    throw std::invalid_argument("NetFM::pretrain: empty corpus");
  const std::size_t seq_len =
      std::min(options.max_seq_len, encoder_->config().max_seq_len);
  // Encode the corpus once; masking corrupts copies per step.
  std::vector<Encoded> encoded;
  encoded.reserve(corpus.size());
  for (const auto& tokens : corpus)
    encoded.push_back(encode_context(tokens, vocab_, seq_len));
  return pretrain_impl(
      corpus.size(),
      [&](std::size_t, std::span<const std::size_t> indices) {
        std::vector<Encoded> items;
        items.reserve(indices.size());
        for (const std::size_t i : indices) items.push_back(encoded[i]);
        return items;
      },
      pairs, options);
}

TrainLog NetFM::pretrain(const data::CorpusReader& corpus,
                         const std::vector<ctx::SegmentPair>& pairs,
                         const PretrainOptions& options) {
  if (corpus.size() == 0)
    throw std::invalid_argument("NetFM::pretrain: empty corpus");
  const bool use_pairs =
      options.task == PretrainTask::kMlmAndNextPacket && !pairs.empty();
  const std::size_t seq_len =
      std::min(options.max_seq_len, encoder_->config().max_seq_len);
  // The loader draws batch_indices(seed, step, num_contexts, size) — the
  // identical composition pretrain_impl expects — and prefetches upcoming
  // steps in the background; this thread only encodes what it consumes.
  data::StreamingLoader::Options loader_options;
  loader_options.seed = options.seed;
  loader_options.batch_size =
      options.batch_size - pairs_per_batch(options, use_pairs);
  data::StreamingLoader loader(corpus, loader_options);
  return pretrain_impl(
      corpus.size(),
      [&](std::size_t step, std::span<const std::size_t> indices) {
        auto rows = loader.batch(step);
        std::vector<Encoded> items;
        items.reserve(rows.size());
        for (const auto& row : rows)
          items.push_back(encode_context(row, vocab_, seq_len));
        (void)indices;  // composed identically inside the loader
        return items;
      },
      pairs, options);
}

TrainLog NetFM::pretrain_impl(
    std::size_t corpus_size,
    const std::function<std::vector<Encoded>(
        std::size_t, std::span<const std::size_t>)>& fetch,
    const std::vector<ctx::SegmentPair>& pairs,
    const PretrainOptions& options) {
  const bool use_pairs =
      options.task == PretrainTask::kMlmAndNextPacket && !pairs.empty();
  const std::size_t seq_len =
      std::min(options.max_seq_len, encoder_->config().max_seq_len);

  std::vector<Encoded> encoded_pairs;
  std::vector<int> pair_labels;
  if (use_pairs) {
    for (const ctx::SegmentPair& pair : pairs) {
      encoded_pairs.push_back(
          encode_pair(pair.first, pair.second, vocab_, seq_len));
      pair_labels.push_back(pair.is_next ? 1 : 0);
    }
  }

  nn::ParameterList params = parameters();
  nn::Adam adam(options.peak_lr, 0.9f, 0.999f, 1e-8f, 0.01f);
  nn::WarmupLinearSchedule schedule(
      options.peak_lr, static_cast<std::int64_t>(options.warmup_steps),
      static_cast<std::int64_t>(options.steps));

  std::vector<double> per_id_prob;
  if (!options.focus_prefixes.empty())
    per_id_prob = focused_mask_probabilities(
        vocab_, options.focus_prefixes, options.focus_prob,
        options.mask_prob);

  static const auto h_step = metrics::histogram("core.pretrain.step.ns");
  static const auto c_tokens =
      metrics::counter("core.pretrain.tokens", "token");
  static const auto g_loss = metrics::gauge("core.pretrain.loss", "nats");
  static const auto c_nonfinite =
      metrics::counter("core.pretrain.nonfinite_skipped");
  static const auto f_crash = fault::point("core.pretrain.crash");
  static const auto f_loss = fault::point("core.pretrain.loss");

  TrainLog log;
  std::size_t start_step = 0;
  if (!options.checkpoint_path.empty()) {
    if (const auto at =
            nn::load_checkpoint_file(options.checkpoint_path, params)) {
      start_step = std::min(static_cast<std::size_t>(*at), options.steps);
      log.resumed_from = start_step;
    }
  }

  const std::size_t num_pairs = pairs_per_batch(options, use_pairs);
  const std::size_t num_contexts = options.batch_size - num_pairs;

  const auto start = std::chrono::steady_clock::now();
  for (std::size_t step = start_step; step < options.steps; ++step) {
    metrics::ScopedTimer step_timer(h_step);
    if (f_crash.fire()) throw fault::CrashInjected{"core.pretrain.crash"};
    // Batches are a pure function of (seed, step): a resumed run draws the
    // same data the uninterrupted run would have from this step on. The
    // context indices come from a separate salted stream (batch_indices)
    // so the loader can compose batches ahead of the step loop; step_rng
    // then covers masking and pair draws only.
    const auto indices =
        data::batch_indices(options.seed, step, num_contexts, corpus_size);
    Rng rng = step_rng(options.seed, step);
    // Assemble the batch in two runs — contexts first, then segment pairs —
    // so pair rows are contiguous for the next-packet head.
    std::vector<Encoded> batch_items = fetch(step, indices);
    std::vector<std::vector<int>> batch_targets;
    std::vector<int> batch_next_labels;
    for (Encoded& item : batch_items) {
      batch_targets.push_back(apply_mlm_mask(item.ids, vocab_, rng,
                                             options.mask_prob, per_id_prob));
    }
    for (std::size_t b = 0; b < num_pairs; ++b) {
      const std::size_t at = rng.uniform(encoded_pairs.size());
      Encoded item = encoded_pairs[at];
      batch_targets.push_back(apply_mlm_mask(item.ids, vocab_, rng,
                                             options.mask_prob, per_id_prob));
      batch_items.push_back(std::move(item));
      batch_next_labels.push_back(pair_labels[at]);
    }

    const Batch batch = make_batch(batch_items);
    std::vector<int> flat_targets;
    flat_targets.reserve(batch.token_ids.size());
    for (const auto& t : batch_targets)
      flat_targets.insert(flat_targets.end(), t.begin(), t.end());

    const Tensor hidden = encoder_->forward(batch, /*train=*/true);
    const Tensor logits = mlm_head_->forward(hidden);
    Tensor loss = nn::cross_entropy(logits, flat_targets);

    if (num_pairs > 0) {
      // Next-packet head reads the pooled output of the pair rows only.
      const Tensor pooled =
          pooler_->forward(hidden, batch.batch_size, batch.seq_len);
      const Tensor pair_pooled = nn::slice_rows(
          pooled, num_contexts, num_contexts + num_pairs);
      const Tensor next_logits = next_segment_head_->forward(pair_pooled);
      loss = nn::add(loss, nn::cross_entropy(next_logits, batch_next_labels));
    }

    float loss_value = loss.item();
    if (const auto injected = fault::corrupt_float(f_loss))
      loss_value = *injected;
    if (!std::isfinite(loss_value)) {
      // A NaN/Inf loss would poison every parameter through backward();
      // drop the step instead of the run.
      ++log.nonfinite_skipped;
      c_nonfinite.add();
      continue;
    }

    nn::zero_grad(params);
    loss.backward();
    const float grad_norm = nn::clip_grad_norm(params, 1.0f);
    if (!std::isfinite(grad_norm)) {
      ++log.nonfinite_skipped;
      c_nonfinite.add();
      continue;
    }
    adam.set_lr(schedule.lr_at(static_cast<std::int64_t>(step)));
    adam.step(params);

    log.losses.push_back(loss_value);
    c_tokens.add(batch.token_ids.size());
    g_loss.set(loss_value);
    if (options.verbose && step % 20 == 0)
      std::printf("  pretrain step %zu loss %.4f\n", step, loss_value);

    if (!options.checkpoint_path.empty() && options.checkpoint_every > 0 &&
        (step + 1) % options.checkpoint_every == 0)
      nn::save_checkpoint_file(options.checkpoint_path, params, step + 1);
  }
  if (!options.checkpoint_path.empty())
    nn::save_checkpoint_file(options.checkpoint_path, params, options.steps);
  log.seconds = seconds_since(start);
  log.steps = options.steps - start_step;
  return log;
}

double NetFM::mlm_loss(const std::vector<std::vector<std::string>>& corpus,
                       std::size_t max_seq_len, std::uint64_t seed) const {
  if (corpus.empty()) return 0.0;
  const std::size_t seq_len =
      std::min(max_seq_len, encoder_->config().max_seq_len);
  Rng rng(seed);
  const nn::InferenceGuard guard;  // evaluation never needs the graph
  double total = 0.0;
  std::size_t batches = 0;
  constexpr std::size_t kBatch = 8;
  for (std::size_t at = 0; at < corpus.size(); at += kBatch) {
    std::vector<Encoded> items;
    std::vector<int> targets;
    for (std::size_t i = at; i < std::min(corpus.size(), at + kBatch); ++i) {
      Encoded item = encode_context(corpus[i], vocab_, seq_len);
      const auto t = apply_mlm_mask(item.ids, vocab_, rng, 0.15);
      targets.insert(targets.end(), t.begin(), t.end());
      items.push_back(std::move(item));
    }
    const Batch batch = make_batch(items);
    const Tensor hidden = encoder_->forward(batch, /*train=*/false);
    const Tensor logits = mlm_head_->forward(hidden);
    total += nn::cross_entropy(logits, targets).item();
    ++batches;
  }
  return batches == 0 ? 0.0 : total / static_cast<double>(batches);
}

TrainLog NetFM::fine_tune(
    const std::vector<std::vector<std::string>>& contexts,
    std::span<const int> labels, std::size_t num_classes,
    const FineTuneOptions& options) {
  if (contexts.size() != labels.size() || contexts.empty())
    throw std::invalid_argument("NetFM::fine_tune: bad inputs");
  const std::size_t seq_len =
      std::min(options.max_seq_len, encoder_->config().max_seq_len);

  Rng head_rng(options.seed);
  classifier_ = std::make_unique<model::ClassificationHead>(
      encoder_->config().d_model, num_classes, head_rng);

  nn::ParameterList params;
  if (!options.freeze_encoder) {
    for (nn::Parameter& p : encoder_->parameters()) {
      if (options.freeze_token_embeddings && p.name == "embed.token")
        continue;
      params.push_back(std::move(p));
    }
  }
  pooler_->collect(params);
  classifier_->collect(params);

  std::vector<Encoded> encoded;
  encoded.reserve(contexts.size());
  for (const auto& tokens : contexts)
    encoded.push_back(encode_context(tokens, vocab_, seq_len));

  nn::Adam adam(options.lr);
  static const auto f_crash = fault::point("core.finetune.crash");
  static const auto f_loss = fault::point("core.finetune.loss");
  static const auto c_nonfinite =
      metrics::counter("core.finetune.nonfinite_skipped");

  TrainLog log;
  std::size_t start_epoch = 0;
  if (!options.checkpoint_path.empty()) {
    if (const auto at =
            nn::load_checkpoint_file(options.checkpoint_path, params)) {
      start_epoch = std::min(static_cast<std::size_t>(*at), options.epochs);
      log.resumed_from = start_epoch;
    }
  }

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::size_t> order(encoded.size());
  std::iota(order.begin(), order.end(), 0);

  for (std::size_t epoch = start_epoch; epoch < options.epochs; ++epoch) {
    if (f_crash.fire()) throw fault::CrashInjected{"core.finetune.crash"};
    // Shuffle and dropout are a pure function of (seed, epoch) so a resumed
    // run replays the uninterrupted run's batch order.
    Rng rng = step_rng(options.seed + 1, epoch);
    rng.shuffle(order);
    float epoch_loss = 0.0f;
    std::size_t batches = 0;
    for (std::size_t at = 0; at < order.size(); at += options.batch_size) {
      const std::size_t end =
          std::min(order.size(), at + options.batch_size);
      std::vector<Encoded> items;
      std::vector<int> batch_labels;
      for (std::size_t i = at; i < end; ++i) {
        Encoded item = encoded[order[i]];
        if (options.token_dropout > 0.0) {
          for (int& id : item.ids)
            if (id >= tok::Vocabulary::kNumSpecial &&
                rng.chance(options.token_dropout))
              id = tok::Vocabulary::kMask;
        }
        items.push_back(std::move(item));
        batch_labels.push_back(labels[order[i]]);
      }
      const Batch batch = make_batch(items);
      const Tensor hidden = encoder_->forward(batch, /*train=*/true);
      const Tensor pooled =
          pooler_->forward(hidden, batch.batch_size, batch.seq_len);
      const Tensor logits = classifier_->forward(pooled);
      Tensor loss = nn::cross_entropy(logits, batch_labels);

      float loss_value = loss.item();
      if (const auto injected = fault::corrupt_float(f_loss))
        loss_value = *injected;
      if (!std::isfinite(loss_value)) {
        ++log.nonfinite_skipped;
        c_nonfinite.add();
        continue;
      }

      nn::zero_grad(params);
      loss.backward();
      const float grad_norm = nn::clip_grad_norm(params, 1.0f);
      if (!std::isfinite(grad_norm)) {
        ++log.nonfinite_skipped;
        c_nonfinite.add();
        continue;
      }
      adam.step(params);
      epoch_loss += loss_value;
      ++batches;
      ++log.steps;
      static const auto c_steps = metrics::counter("core.finetune.steps");
      c_steps.add();
    }
    log.losses.push_back(batches ? epoch_loss / batches : 0.0f);
    static const auto g_loss = metrics::gauge("core.finetune.loss", "nats");
    g_loss.set(batches ? epoch_loss / batches : 0.0f);

    if (!options.checkpoint_path.empty() && options.checkpoint_every > 0 &&
        (epoch + 1) % options.checkpoint_every == 0)
      nn::save_checkpoint_file(options.checkpoint_path, params, epoch + 1);
  }
  log.seconds = seconds_since(start);
  return log;
}

nn::Tensor NetFM::forward_pooled(const Batch& batch, bool train) const {
  const Tensor hidden = encoder_->forward(batch, train);
  return pooler_->forward(hidden, batch.batch_size, batch.seq_len);
}

std::vector<float> NetFM::predict_logits(
    const std::vector<std::string>& context, std::size_t max_seq_len) const {
  if (!classifier_)
    throw std::logic_error("NetFM::predict_logits: call fine_tune() first");
  const std::size_t seq_len =
      std::min(max_seq_len, encoder_->config().max_seq_len);
  const Encoded item = encode_context(context, vocab_, seq_len);
  const Batch batch = make_batch(std::span<const Encoded>(&item, 1));
  const nn::InferenceGuard guard;
  const Tensor logits =
      classifier_->forward(forward_pooled(batch, /*train=*/false));
  return {logits.data().begin(), logits.data().end()};
}

std::vector<float> NetFM::predict_proba(
    const std::vector<std::string>& context, std::size_t max_seq_len) const {
  const std::vector<float> raw = predict_logits(context, max_seq_len);
  const Tensor logits(nn::Shape{1, raw.size()}, raw);
  const Tensor probs = nn::softmax(logits);
  return {probs.data().begin(), probs.data().end()};
}

int NetFM::predict(const std::vector<std::string>& context,
                   std::size_t max_seq_len) const {
  const auto probs = predict_proba(context, max_seq_len);
  return static_cast<int>(std::max_element(probs.begin(), probs.end()) -
                          probs.begin());
}

std::vector<float> NetFM::embed(const std::vector<std::string>& context,
                                std::size_t max_seq_len) const {
  const std::size_t seq_len =
      std::min(max_seq_len, encoder_->config().max_seq_len);
  const Encoded item = encode_context(context, vocab_, seq_len);
  const Batch batch = make_batch(std::span<const Encoded>(&item, 1));
  const nn::InferenceGuard guard;
  const Tensor hidden = encoder_->forward(batch, /*train=*/false);

  // Mean over real (non-padding) positions.
  const std::size_t d_model = encoder_->config().d_model;
  std::vector<float> out(d_model, 0.0f);
  float count = 0.0f;
  for (std::size_t t = 0; t < batch.seq_len; ++t) {
    if (batch.attention_mask[t] == 0.0f) continue;
    for (std::size_t d = 0; d < d_model; ++d)
      out[d] += hidden.data()[t * d_model + d];
    count += 1.0f;
  }
  if (count > 0.0f)
    for (float& v : out) v /= count;
  return out;
}

std::vector<std::vector<float>> NetFM::embed_flows(
    std::span<const std::vector<std::string>> contexts,
    std::size_t max_seq_len) const {
  if (contexts.empty()) return {};
  const std::size_t seq_len =
      std::min(max_seq_len, encoder_->config().max_seq_len);
  std::vector<Encoded> items;
  items.reserve(contexts.size());
  for (const auto& context : contexts)
    items.push_back(encode_context(context, vocab_, seq_len));
  // encode_context pads every item to seq_len, and the forward computes
  // each sequence's rows independently of its batch neighbours (padding is
  // masked to an exact zero attention weight) — so one batched pass
  // produces the same floats as a per-flow loop.
  const Batch batch = make_batch(items);
  const nn::InferenceGuard guard;
  const Tensor hidden = encoder_->forward(batch, /*train=*/false);

  const std::size_t d_model = encoder_->config().d_model;
  std::vector<std::vector<float>> out(contexts.size());
  for (std::size_t b = 0; b < contexts.size(); ++b) {
    std::vector<float>& row = out[b];
    row.assign(d_model, 0.0f);
    float count = 0.0f;
    const float* base = hidden.data().data() + b * batch.seq_len * d_model;
    for (std::size_t t = 0; t < batch.seq_len; ++t) {
      if (batch.attention_mask[b * batch.seq_len + t] == 0.0f) continue;
      for (std::size_t d = 0; d < d_model; ++d) row[d] += base[t * d_model + d];
      count += 1.0f;
    }
    if (count > 0.0f)
      for (float& v : row) v /= count;
  }
  return out;
}

std::vector<float> NetFM::token_vector(std::string_view token) const {
  const int id = vocab_.id(token);
  const std::size_t d_model = encoder_->config().d_model;
  const auto table = encoder_->token_embeddings().data();
  const auto row = static_cast<std::size_t>(id) * d_model;
  return {table.begin() + row, table.begin() + row + d_model};
}

std::vector<std::pair<std::string, double>> NetFM::nearest_tokens(
    std::string_view token, std::size_t k) const {
  const std::vector<float> query = token_vector(token);
  const int self_id = vocab_.id(token);
  std::vector<std::pair<std::string, double>> scored;
  for (std::size_t id = tok::Vocabulary::kNumSpecial; id < vocab_.size();
       ++id) {
    if (static_cast<int>(id) == self_id) continue;
    const std::vector<float> candidate =
        token_vector(vocab_.token(static_cast<int>(id)));
    scored.emplace_back(vocab_.token(static_cast<int>(id)),
                        cosine(query, candidate));
  }
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (scored.size() > k) scored.resize(k);
  return scored;
}

std::vector<std::pair<std::string, double>> NetFM::analogy(
    std::string_view a, std::string_view b, std::string_view c,
    std::size_t k) const {
  const std::vector<float> va = token_vector(a);
  const std::vector<float> vb = token_vector(b);
  const std::vector<float> vc = token_vector(c);
  std::vector<float> query(va.size());
  for (std::size_t i = 0; i < query.size(); ++i)
    query[i] = vb[i] - va[i] + vc[i];

  std::vector<std::pair<std::string, double>> scored;
  for (std::size_t id = tok::Vocabulary::kNumSpecial; id < vocab_.size();
       ++id) {
    const std::string& candidate = vocab_.token(static_cast<int>(id));
    if (candidate == a || candidate == b || candidate == c) continue;
    scored.emplace_back(candidate, cosine(query, token_vector(candidate)));
  }
  std::sort(scored.begin(), scored.end(),
            [](const auto& x, const auto& y) { return x.second > y.second; });
  if (scored.size() > k) scored.resize(k);
  return scored;
}

nn::ParameterList NetFM::parameters() const {
  nn::ParameterList params = encoder_->parameters();
  mlm_head_->collect(params);
  pooler_->collect(params);
  next_segment_head_->collect(params);
  if (classifier_) classifier_->collect(params);
  return params;
}

bool NetFM::save(const std::string& path) const {
  return nn::save_parameters_file(path, parameters());
}

bool NetFM::load(const std::string& path) {
  nn::ParameterList params = parameters();
  if (!nn::load_parameters_file(path, params)) return false;
  prequantize();  // re-pack int8 caches against the loaded weights
  return true;
}

void NetFM::prequantize() const {
  encoder_->prequantize();
  mlm_head_->prequantize();
  pooler_->prequantize();
  next_segment_head_->prequantize();
  if (classifier_) classifier_->prequantize();
}

}  // namespace netfm::core
