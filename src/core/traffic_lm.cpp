#include "core/traffic_lm.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "common/fault.h"
#include "common/metrics.h"
#include "data/corpus.h"
#include "data/loader.h"

namespace netfm::core {

using model::Batch;
using nn::Tensor;

TrafficLM::TrafficLM(tok::Vocabulary vocab, model::TransformerConfig config)
    : vocab_(std::move(vocab)) {
  config.vocab_size = vocab_.size();
  config.causal = true;
  encoder_ = std::make_unique<model::TransformerEncoder>(config);
  Rng head_rng(config.seed + 3);
  head_ = std::make_unique<model::MlmHead>(
      encoder_->config(), encoder_->token_embeddings(), head_rng);
}

namespace {

/// Shift targets: position t predicts ids[t+1]; padding and the position
/// after [SEP] are ignored.
std::vector<int> next_token_targets(const Encoded& item) {
  std::vector<int> targets(item.ids.size(), -1);
  for (std::size_t t = 0; t + 1 < item.ids.size(); ++t) {
    if (item.mask[t] == 0.0f || item.mask[t + 1] == 0.0f) continue;
    targets[t] = item.ids[t + 1];
  }
  return targets;
}

}  // namespace

TrainLog TrafficLM::train(
    const std::vector<std::vector<std::string>>& corpus,
    const LmTrainOptions& options) {
  if (corpus.empty())
    throw std::invalid_argument("TrafficLM::train: empty corpus");
  const std::size_t seq_len =
      std::min(options.max_seq_len, encoder_->config().max_seq_len);

  // Encode the corpus once; batches reference these by index.
  std::vector<Encoded> encoded;
  encoded.reserve(corpus.size());
  for (const auto& tokens : corpus)
    encoded.push_back(encode_context(tokens, vocab_, seq_len));
  return train_impl(
      corpus.size(),
      [&](std::size_t, std::span<const std::size_t> indices) {
        std::vector<Encoded> items;
        items.reserve(indices.size());
        for (const std::size_t i : indices) items.push_back(encoded[i]);
        return items;
      },
      options);
}

TrainLog TrafficLM::train(const data::CorpusReader& corpus,
                          const LmTrainOptions& options) {
  if (corpus.size() == 0)
    throw std::invalid_argument("TrafficLM::train: empty corpus");
  const std::size_t seq_len =
      std::min(options.max_seq_len, encoder_->config().max_seq_len);
  data::StreamingLoader::Options loader_options;
  loader_options.seed = options.seed;
  loader_options.batch_size = options.batch_size;
  data::StreamingLoader loader(corpus, loader_options);
  return train_impl(
      corpus.size(),
      [&](std::size_t step, std::span<const std::size_t> indices) {
        auto rows = loader.batch(step);
        std::vector<Encoded> items;
        items.reserve(rows.size());
        for (const auto& row : rows)
          items.push_back(encode_context(row, vocab_, seq_len));
        (void)indices;  // composed identically inside the loader
        return items;
      },
      options);
}

TrainLog TrafficLM::train_impl(
    std::size_t corpus_size,
    const std::function<std::vector<Encoded>(
        std::size_t, std::span<const std::size_t>)>& fetch,
    const LmTrainOptions& options) {
  nn::ParameterList params = parameters();
  nn::Adam adam(options.peak_lr, 0.9f, 0.999f, 1e-8f, 0.01f);
  nn::WarmupLinearSchedule schedule(
      options.peak_lr, static_cast<std::int64_t>(options.warmup_steps),
      static_cast<std::int64_t>(options.steps));
  static const auto h_step = metrics::histogram("core.lm.step.ns");
  static const auto c_tokens = metrics::counter("core.lm.tokens", "token");
  static const auto g_loss = metrics::gauge("core.lm.loss", "nats");
  static const auto c_nonfinite =
      metrics::counter("core.lm.nonfinite_skipped");
  static const auto f_crash = fault::point("core.lm.crash");
  static const auto f_loss = fault::point("core.lm.loss");

  TrainLog log;
  std::size_t start_step = 0;
  if (!options.checkpoint_path.empty()) {
    if (const auto at =
            nn::load_checkpoint_file(options.checkpoint_path, params)) {
      start_step = std::min(static_cast<std::size_t>(*at), options.steps);
      log.resumed_from = start_step;
    }
  }

  const auto start = std::chrono::steady_clock::now();
  for (std::size_t step = start_step; step < options.steps; ++step) {
    metrics::ScopedTimer step_timer(h_step);
    if (f_crash.fire()) throw fault::CrashInjected{"core.lm.crash"};
    // Batch composition is a pure function of (seed, step) via the salted
    // data::batch_indices stream — the property checkpoint resume and the
    // streaming loader both rely on.
    const auto indices = data::batch_indices(options.seed, step,
                                             options.batch_size, corpus_size);
    std::vector<Encoded> items = fetch(step, indices);
    std::vector<int> targets;
    for (const Encoded& item : items) {
      const auto t = next_token_targets(item);
      targets.insert(targets.end(), t.begin(), t.end());
    }
    const Batch batch = make_batch(items);
    const Tensor hidden = encoder_->forward(batch, /*train=*/true);
    Tensor loss = nn::cross_entropy(head_->forward(hidden), targets);

    float loss_value = loss.item();
    if (const auto injected = fault::corrupt_float(f_loss))
      loss_value = *injected;
    if (!std::isfinite(loss_value)) {
      ++log.nonfinite_skipped;
      c_nonfinite.add();
      continue;
    }

    nn::zero_grad(params);
    loss.backward();
    const float grad_norm = nn::clip_grad_norm(params, 1.0f);
    if (!std::isfinite(grad_norm)) {
      ++log.nonfinite_skipped;
      c_nonfinite.add();
      continue;
    }
    adam.set_lr(schedule.lr_at(static_cast<std::int64_t>(step)));
    adam.step(params);
    log.losses.push_back(loss_value);
    c_tokens.add(batch.token_ids.size());
    g_loss.set(loss_value);

    if (!options.checkpoint_path.empty() && options.checkpoint_every > 0 &&
        (step + 1) % options.checkpoint_every == 0)
      nn::save_checkpoint_file(options.checkpoint_path, params, step + 1);
  }
  if (!options.checkpoint_path.empty())
    nn::save_checkpoint_file(options.checkpoint_path, params, options.steps);
  log.steps = options.steps - start_step;
  log.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return log;
}

double TrafficLM::loss(const std::vector<std::vector<std::string>>& corpus,
                       std::size_t max_seq_len) const {
  if (corpus.empty()) return 0.0;
  const std::size_t seq_len =
      std::min(max_seq_len, encoder_->config().max_seq_len);
  const nn::InferenceGuard guard;  // evaluation never needs the graph
  // Token-weighted aggregation: cross_entropy returns a per-batch *mean*
  // over active targets, so averaging batch means would over-weight a
  // ragged final batch. Re-weight each batch by its active-target count.
  double total = 0.0;
  std::size_t total_targets = 0;
  constexpr std::size_t kBatch = 8;
  for (std::size_t at = 0; at < corpus.size(); at += kBatch) {
    std::vector<Encoded> items;
    std::vector<int> targets;
    for (std::size_t i = at; i < std::min(corpus.size(), at + kBatch); ++i) {
      Encoded item = encode_context(corpus[i], vocab_, seq_len);
      const auto t = next_token_targets(item);
      targets.insert(targets.end(), t.begin(), t.end());
      items.push_back(std::move(item));
    }
    const std::size_t active = static_cast<std::size_t>(
        std::count_if(targets.begin(), targets.end(),
                      [](int t) { return t >= 0; }));
    if (active == 0) continue;
    const Batch batch = make_batch(items);
    const Tensor hidden = encoder_->forward(batch, /*train=*/false);
    total += nn::cross_entropy(head_->forward(hidden), targets).item() *
             static_cast<double>(active);
    total_targets += active;
  }
  return total_targets == 0 ? 0.0
                            : total / static_cast<double>(total_targets);
}

std::vector<float> TrafficLM::next_logits(std::span<const int> ids) const {
  if (ids.empty())
    throw std::invalid_argument("TrafficLM::next_logits: empty input");
  const nn::InferenceGuard guard;  // logits only — never build the graph
  Batch batch;
  batch.batch_size = 1;
  batch.seq_len = ids.size();
  batch.token_ids.assign(ids.begin(), ids.end());
  batch.segment_ids.assign(ids.size(), 0);
  batch.attention_mask.assign(ids.size(), 1.0f);
  const Tensor hidden = encoder_->forward(batch, /*train=*/false);
  const Tensor logits = head_->forward(hidden);
  const std::size_t vocab = vocab_.size();
  const std::size_t last = (ids.size() - 1) * vocab;
  return {logits.data().begin() + last,
          logits.data().begin() + last + vocab};
}

std::vector<std::vector<float>> TrafficLM::next_logits_batch(
    std::span<const std::vector<int>> sequences) const {
  if (sequences.empty()) return {};
  std::size_t max_len = 0;
  for (const auto& ids : sequences) {
    if (ids.empty())
      throw std::invalid_argument("TrafficLM::next_logits_batch: empty input");
    max_len = std::max(max_len, ids.size());
  }
  if (max_len > encoder_->config().max_seq_len)
    throw std::invalid_argument(
        "TrafficLM::next_logits_batch: sequence exceeds max_seq_len");

  const nn::InferenceGuard guard;
  Batch batch;
  batch.batch_size = sequences.size();
  batch.seq_len = max_len;
  batch.token_ids.assign(sequences.size() * max_len, tok::Vocabulary::kPad);
  batch.segment_ids.assign(sequences.size() * max_len, 0);
  batch.attention_mask.assign(sequences.size() * max_len, 0.0f);
  for (std::size_t b = 0; b < sequences.size(); ++b) {
    const auto& ids = sequences[b];
    std::copy(ids.begin(), ids.end(),
              batch.token_ids.begin() +
                  static_cast<std::ptrdiff_t>(b * max_len));
    std::fill_n(batch.attention_mask.begin() +
                    static_cast<std::ptrdiff_t>(b * max_len),
                ids.size(), 1.0f);
  }
  const Tensor hidden = encoder_->forward(batch, /*train=*/false);

  // Head fast path: the LM head is row-independent, so apply it only to
  // each sequence's last real position ([B, D] rows gathered from the
  // padded [B*T, D] hidden states) instead of all B*T rows. Row-for-row
  // bitwise identical to head_->forward(hidden) at those positions.
  const std::size_t d_model = encoder_->config().d_model;
  Tensor last_hidden = Tensor::empty({sequences.size(), d_model});
  for (std::size_t b = 0; b < sequences.size(); ++b) {
    const std::size_t row = b * max_len + (sequences[b].size() - 1);
    std::copy_n(hidden.data().data() + row * d_model, d_model,
                last_hidden.data().data() + b * d_model);
  }
  const Tensor logits = head_->forward(last_hidden);  // [B, V]
  const std::size_t vocab = vocab_.size();
  std::vector<std::vector<float>> out(sequences.size());
  for (std::size_t b = 0; b < sequences.size(); ++b)
    out[b].assign(logits.data().begin() + b * vocab,
                  logits.data().begin() + (b + 1) * vocab);
  return out;
}

LmDecoder::LmDecoder(const TrafficLM& lm)
    : lm_(&lm), cache_(lm.encoder_->make_paged_cache()) {}

LmDecoder::LmDecoder(const TrafficLM& lm,
                     std::shared_ptr<model::KvBlockPool> pool)
    : lm_(&lm), cache_(lm.encoder_->make_paged_cache(std::move(pool))) {}

std::vector<float> LmDecoder::advance(int token_id) {
  static const auto f_crash = fault::point("core.decode.crash");
  if (f_crash.fire()) throw fault::CrashInjected{"core.decode.crash"};
  const nn::InferenceGuard guard;
  const Tensor hidden = lm_->encoder_->forward_incremental(token_id, cache_);
  const Tensor logits = lm_->head_->forward(hidden);  // [1, V]
  return {logits.data().begin(), logits.data().end()};
}

std::vector<std::vector<float>> LmDecoder::advance_batch(
    std::span<LmDecoder* const> decoders, std::span<const int> token_ids) {
  static const auto f_crash = fault::point("core.decode.crash");
  if (decoders.empty()) return {};
  if (decoders.size() != token_ids.size())
    throw std::invalid_argument(
        "LmDecoder::advance_batch: one token per decoder");
  const TrafficLM* lm = decoders[0]->lm_;
  for (LmDecoder* d : decoders)
    if (d == nullptr || d->lm_ != lm)
      throw std::invalid_argument(
          "LmDecoder::advance_batch: decoders must share one TrafficLM");
  if (f_crash.fire()) throw fault::CrashInjected{"core.decode.crash"};
  const nn::InferenceGuard guard;
  std::vector<model::PagedKvCache*> caches;
  caches.reserve(decoders.size());
  for (LmDecoder* d : decoders) caches.push_back(&d->cache_);
  const Tensor hidden =
      lm->encoder_->forward_incremental_batch(token_ids, caches);  // [B, D]
  const Tensor logits = lm->head_->forward(hidden);                // [B, V]
  const std::size_t vocab = lm->vocab_.size();
  std::vector<std::vector<float>> out(decoders.size());
  for (std::size_t b = 0; b < decoders.size(); ++b)
    out[b].assign(logits.data().begin() + b * vocab,
                  logits.data().begin() + (b + 1) * vocab);
  return out;
}

namespace {

/// Frames a sequence exactly like training data: [CLS] tokens... [SEP],
/// truncated to max_seq_len.
std::vector<int> frame_for_score(const std::vector<std::string>& tokens,
                                 const tok::Vocabulary& vocab,
                                 std::size_t max_seq_len) {
  std::vector<int> ids;
  ids.reserve(tokens.size() + 2);
  ids.push_back(tok::Vocabulary::kCls);
  for (const std::string& t : tokens) ids.push_back(vocab.id(t));
  ids.push_back(tok::Vocabulary::kSep);
  if (ids.size() > max_seq_len) ids.resize(max_seq_len);
  return ids;
}

/// Stable log-softmax at the realized next token, in double: the per-step
/// term `total -=` accumulates in score(). Shared by the serial and
/// batched score paths so their arithmetic is identical by construction.
double log_prob_term(const std::vector<float>& logits, int next_id) {
  float maxv = logits[0];
  for (float v : logits) maxv = std::max(maxv, v);
  double denom = 0.0;
  for (float v : logits) denom += std::exp(static_cast<double>(v - maxv));
  return static_cast<double>(logits[static_cast<std::size_t>(next_id)] -
                             maxv) -
         std::log(denom);
}

/// One sampling step: special-token masking, temperature, optional top-k
/// truncation, softmax draw from `rng`. Shared by the serial and batched
/// sample paths so their draws are identical by construction.
int sample_next_token(std::vector<float> logits, const SampleOptions& options,
                      Rng& rng) {
  // Never emit padding/[CLS]/[MASK]; [SEP] ends the sequence.
  logits[tok::Vocabulary::kPad] = -1e9f;
  logits[tok::Vocabulary::kCls] = -1e9f;
  logits[tok::Vocabulary::kMask] = -1e9f;
  logits[tok::Vocabulary::kUnk] = -1e9f;

  // Temperature + optional top-k truncation, then softmax-sample.
  const float inv_temp =
      options.temperature > 0.0
          ? 1.0f / static_cast<float>(options.temperature)
          : 1.0f;
  for (float& v : logits) v *= inv_temp;
  if (options.top_k > 0 && options.top_k < logits.size()) {
    std::vector<float> sorted = logits;
    std::nth_element(
        sorted.begin(),
        sorted.begin() + static_cast<std::ptrdiff_t>(options.top_k - 1),
        sorted.end(), std::greater<float>());
    const float cutoff = sorted[options.top_k - 1];
    for (float& v : logits)
      if (v < cutoff) v = -1e9f;
  }
  float max_logit = *std::max_element(logits.begin(), logits.end());
  std::vector<double> probs(logits.size());
  for (std::size_t i = 0; i < logits.size(); ++i)
    probs[i] = std::exp(static_cast<double>(logits[i]) - max_logit);
  return static_cast<int>(rng.weighted(probs));
}

}  // namespace

double TrafficLM::score(const std::vector<std::string>& tokens) const {
  LmDecoder decoder(*this);
  return score(tokens, decoder);
}

double TrafficLM::score(const std::vector<std::string>& tokens,
                        LmDecoder& decoder) const {
  const std::vector<int> ids =
      frame_for_score(tokens, vocab_, encoder_->config().max_seq_len);
  if (ids.size() < 2) return 0.0;

  decoder.reset();
  double total = 0.0;
  std::size_t count = 0;
  for (std::size_t t = 0; t + 1 < ids.size(); ++t) {
    const std::vector<float> logits = decoder.advance(ids[t]);
    total -= log_prob_term(logits, ids[t + 1]);
    ++count;
  }
  return total / static_cast<double>(count);
}

std::vector<double> TrafficLM::score_batch(
    std::span<const std::vector<std::string>> sequences,
    std::span<LmDecoder* const> decoders) const {
  if (sequences.size() != decoders.size())
    throw std::invalid_argument("TrafficLM::score_batch: one decoder per "
                                "sequence");
  const std::size_t n = sequences.size();
  std::vector<std::vector<int>> ids(n);
  std::vector<double> total(n, 0.0);
  std::vector<std::size_t> count(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    ids[i] =
        frame_for_score(sequences[i], vocab_, encoder_->config().max_seq_len);
    decoders[i]->reset();
  }
  // Lockstep decode: at step t, every sequence that still has a target
  // token joins one batched forward. Sequences fall out of the batch as
  // they end; per-sequence accumulation is untouched, so each element is
  // bitwise equal to the serial score.
  std::vector<LmDecoder*> active;
  std::vector<int> step_tokens;
  std::vector<std::size_t> who;
  for (std::size_t t = 0;; ++t) {
    active.clear();
    step_tokens.clear();
    who.clear();
    for (std::size_t i = 0; i < n; ++i) {
      if (t + 1 >= ids[i].size()) continue;
      active.push_back(decoders[i]);
      step_tokens.push_back(ids[i][t]);
      who.push_back(i);
    }
    if (active.empty()) break;
    const auto logits = LmDecoder::advance_batch(active, step_tokens);
    for (std::size_t g = 0; g < who.size(); ++g) {
      const std::size_t i = who[g];
      total[i] -= log_prob_term(logits[g], ids[i][t + 1]);
      ++count[i];
    }
  }
  std::vector<double> out(n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    if (count[i] > 0) out[i] = total[i] / static_cast<double>(count[i]);
  return out;
}

std::vector<std::string> TrafficLM::sample(const SampleOptions& options,
                                           Rng& rng) const {
  LmDecoder decoder(*this);
  return sample(options, rng, decoder);
}

std::vector<std::string> TrafficLM::sample(const SampleOptions& options,
                                           Rng& rng,
                                           LmDecoder& decoder) const {
  std::vector<int> ids = {tok::Vocabulary::kCls};
  std::vector<std::string> out;
  // max_tokens + 1 accounts for [CLS]; compare before adding so a huge
  // max_tokens (e.g. SIZE_MAX) can't wrap to 0 and emit nothing.
  const std::size_t cap = encoder_->config().max_seq_len;
  const std::size_t limit =
      options.max_tokens >= cap ? cap : options.max_tokens + 1;
  // KV-cached decode: each step appends one token's K/V per layer instead
  // of re-running the whole prefix — logits are bit-identical to
  // next_logits(ids), so sampling draws the exact same tokens.
  decoder.reset();
  while (ids.size() < limit) {
    std::vector<float> logits = decoder.advance(ids.back());
    const int token = sample_next_token(std::move(logits), options, rng);
    if (token == tok::Vocabulary::kSep) break;
    ids.push_back(token);
    out.push_back(vocab_.token(token));
  }
  return out;
}

std::vector<std::vector<std::string>> TrafficLM::sample_batch(
    std::span<const SampleOptions> options, std::span<Rng* const> rngs,
    std::span<LmDecoder* const> decoders) const {
  if (options.size() != decoders.size() || rngs.size() != decoders.size())
    throw std::invalid_argument(
        "TrafficLM::sample_batch: one options/rng per decoder");
  const std::size_t n = decoders.size();
  const std::size_t cap = encoder_->config().max_seq_len;
  std::vector<std::vector<int>> ids(n, std::vector<int>{tok::Vocabulary::kCls});
  std::vector<std::vector<std::string>> out(n);
  std::vector<std::size_t> limit(n);
  std::vector<char> done(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    limit[i] = options[i].max_tokens >= cap ? cap : options[i].max_tokens + 1;
    decoders[i]->reset();
    if (ids[i].size() >= limit[i]) done[i] = 1;
  }
  // Lockstep decode: every still-active stream feeds its last token into
  // one batched forward, then draws from its own Rng through the shared
  // per-step sampling code — so each stream's tokens are bitwise equal to
  // a serial sample() with the same options/seed. Streams drop out of the
  // batch on [SEP] or their token limit.
  std::vector<LmDecoder*> active;
  std::vector<int> step_tokens;
  std::vector<std::size_t> who;
  for (;;) {
    active.clear();
    step_tokens.clear();
    who.clear();
    for (std::size_t i = 0; i < n; ++i) {
      if (done[i]) continue;
      active.push_back(decoders[i]);
      step_tokens.push_back(ids[i].back());
      who.push_back(i);
    }
    if (active.empty()) break;
    auto logits = LmDecoder::advance_batch(active, step_tokens);
    for (std::size_t g = 0; g < who.size(); ++g) {
      const std::size_t i = who[g];
      const int token =
          sample_next_token(std::move(logits[g]), options[i], *rngs[i]);
      if (token == tok::Vocabulary::kSep) {
        done[i] = 1;
        continue;
      }
      ids[i].push_back(token);
      out[i].push_back(vocab_.token(token));
      if (ids[i].size() >= limit[i]) done[i] = 1;
    }
  }
  return out;
}

std::vector<std::vector<std::string>> TrafficLM::sample_corpus(
    std::size_t count, const SampleOptions& options, Rng& rng) const {
  std::vector<std::vector<std::string>> corpus;
  corpus.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto sequence = sample(options, rng);
    if (!sequence.empty()) corpus.push_back(std::move(sequence));
  }
  return corpus;
}

std::shared_ptr<model::KvBlockPool> TrafficLM::make_kv_pool(
    std::size_t num_blocks) const {
  return encoder_->make_block_pool(num_blocks);
}

std::size_t TrafficLM::kv_blocks_per_sequence() const noexcept {
  return encoder_->blocks_per_sequence();
}

nn::ParameterList TrafficLM::parameters() const {
  nn::ParameterList params = encoder_->parameters();
  head_->collect(params);
  return params;
}

void TrafficLM::prequantize() const {
  encoder_->prequantize();
  head_->prequantize();
}

}  // namespace netfm::core
