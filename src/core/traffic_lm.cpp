#include "core/traffic_lm.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "common/fault.h"
#include "common/metrics.h"
#include "data/corpus.h"
#include "data/loader.h"

namespace netfm::core {

using model::Batch;
using nn::Tensor;

TrafficLM::TrafficLM(tok::Vocabulary vocab, model::TransformerConfig config)
    : vocab_(std::move(vocab)) {
  config.vocab_size = vocab_.size();
  config.causal = true;
  encoder_ = std::make_unique<model::TransformerEncoder>(config);
  Rng head_rng(config.seed + 3);
  head_ = std::make_unique<model::MlmHead>(
      encoder_->config(), encoder_->token_embeddings(), head_rng);
}

namespace {

/// Shift targets: position t predicts ids[t+1]; padding and the position
/// after [SEP] are ignored.
std::vector<int> next_token_targets(const Encoded& item) {
  std::vector<int> targets(item.ids.size(), -1);
  for (std::size_t t = 0; t + 1 < item.ids.size(); ++t) {
    if (item.mask[t] == 0.0f || item.mask[t + 1] == 0.0f) continue;
    targets[t] = item.ids[t + 1];
  }
  return targets;
}

}  // namespace

TrainLog TrafficLM::train(
    const std::vector<std::vector<std::string>>& corpus,
    const LmTrainOptions& options) {
  if (corpus.empty())
    throw std::invalid_argument("TrafficLM::train: empty corpus");
  const std::size_t seq_len =
      std::min(options.max_seq_len, encoder_->config().max_seq_len);

  // Encode the corpus once; batches reference these by index.
  std::vector<Encoded> encoded;
  encoded.reserve(corpus.size());
  for (const auto& tokens : corpus)
    encoded.push_back(encode_context(tokens, vocab_, seq_len));
  return train_impl(
      corpus.size(),
      [&](std::size_t, std::span<const std::size_t> indices) {
        std::vector<Encoded> items;
        items.reserve(indices.size());
        for (const std::size_t i : indices) items.push_back(encoded[i]);
        return items;
      },
      options);
}

TrainLog TrafficLM::train(const data::CorpusReader& corpus,
                          const LmTrainOptions& options) {
  if (corpus.size() == 0)
    throw std::invalid_argument("TrafficLM::train: empty corpus");
  const std::size_t seq_len =
      std::min(options.max_seq_len, encoder_->config().max_seq_len);
  data::StreamingLoader::Options loader_options;
  loader_options.seed = options.seed;
  loader_options.batch_size = options.batch_size;
  data::StreamingLoader loader(corpus, loader_options);
  return train_impl(
      corpus.size(),
      [&](std::size_t step, std::span<const std::size_t> indices) {
        auto rows = loader.batch(step);
        std::vector<Encoded> items;
        items.reserve(rows.size());
        for (const auto& row : rows)
          items.push_back(encode_context(row, vocab_, seq_len));
        (void)indices;  // composed identically inside the loader
        return items;
      },
      options);
}

TrainLog TrafficLM::train_impl(
    std::size_t corpus_size,
    const std::function<std::vector<Encoded>(
        std::size_t, std::span<const std::size_t>)>& fetch,
    const LmTrainOptions& options) {
  nn::ParameterList params = parameters();
  nn::Adam adam(options.peak_lr, 0.9f, 0.999f, 1e-8f, 0.01f);
  nn::WarmupLinearSchedule schedule(
      options.peak_lr, static_cast<std::int64_t>(options.warmup_steps),
      static_cast<std::int64_t>(options.steps));
  static const auto h_step = metrics::histogram("core.lm.step.ns");
  static const auto c_tokens = metrics::counter("core.lm.tokens", "token");
  static const auto g_loss = metrics::gauge("core.lm.loss", "nats");
  static const auto c_nonfinite =
      metrics::counter("core.lm.nonfinite_skipped");
  static const auto f_crash = fault::point("core.lm.crash");
  static const auto f_loss = fault::point("core.lm.loss");

  TrainLog log;
  std::size_t start_step = 0;
  if (!options.checkpoint_path.empty()) {
    if (const auto at =
            nn::load_checkpoint_file(options.checkpoint_path, params)) {
      start_step = std::min(static_cast<std::size_t>(*at), options.steps);
      log.resumed_from = start_step;
    }
  }

  const auto start = std::chrono::steady_clock::now();
  for (std::size_t step = start_step; step < options.steps; ++step) {
    metrics::ScopedTimer step_timer(h_step);
    if (f_crash.fire()) throw fault::CrashInjected{"core.lm.crash"};
    // Batch composition is a pure function of (seed, step) via the salted
    // data::batch_indices stream — the property checkpoint resume and the
    // streaming loader both rely on.
    const auto indices = data::batch_indices(options.seed, step,
                                             options.batch_size, corpus_size);
    std::vector<Encoded> items = fetch(step, indices);
    std::vector<int> targets;
    for (const Encoded& item : items) {
      const auto t = next_token_targets(item);
      targets.insert(targets.end(), t.begin(), t.end());
    }
    const Batch batch = make_batch(items);
    const Tensor hidden = encoder_->forward(batch, /*train=*/true);
    Tensor loss = nn::cross_entropy(head_->forward(hidden), targets);

    float loss_value = loss.item();
    if (const auto injected = fault::corrupt_float(f_loss))
      loss_value = *injected;
    if (!std::isfinite(loss_value)) {
      ++log.nonfinite_skipped;
      c_nonfinite.add();
      continue;
    }

    nn::zero_grad(params);
    loss.backward();
    const float grad_norm = nn::clip_grad_norm(params, 1.0f);
    if (!std::isfinite(grad_norm)) {
      ++log.nonfinite_skipped;
      c_nonfinite.add();
      continue;
    }
    adam.set_lr(schedule.lr_at(static_cast<std::int64_t>(step)));
    adam.step(params);
    log.losses.push_back(loss_value);
    c_tokens.add(batch.token_ids.size());
    g_loss.set(loss_value);

    if (!options.checkpoint_path.empty() && options.checkpoint_every > 0 &&
        (step + 1) % options.checkpoint_every == 0)
      nn::save_checkpoint_file(options.checkpoint_path, params, step + 1);
  }
  if (!options.checkpoint_path.empty())
    nn::save_checkpoint_file(options.checkpoint_path, params, options.steps);
  log.steps = options.steps - start_step;
  log.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return log;
}

double TrafficLM::loss(const std::vector<std::vector<std::string>>& corpus,
                       std::size_t max_seq_len) const {
  if (corpus.empty()) return 0.0;
  const std::size_t seq_len =
      std::min(max_seq_len, encoder_->config().max_seq_len);
  const nn::InferenceGuard guard;  // evaluation never needs the graph
  // Token-weighted aggregation: cross_entropy returns a per-batch *mean*
  // over active targets, so averaging batch means would over-weight a
  // ragged final batch. Re-weight each batch by its active-target count.
  double total = 0.0;
  std::size_t total_targets = 0;
  constexpr std::size_t kBatch = 8;
  for (std::size_t at = 0; at < corpus.size(); at += kBatch) {
    std::vector<Encoded> items;
    std::vector<int> targets;
    for (std::size_t i = at; i < std::min(corpus.size(), at + kBatch); ++i) {
      Encoded item = encode_context(corpus[i], vocab_, seq_len);
      const auto t = next_token_targets(item);
      targets.insert(targets.end(), t.begin(), t.end());
      items.push_back(std::move(item));
    }
    const std::size_t active = static_cast<std::size_t>(
        std::count_if(targets.begin(), targets.end(),
                      [](int t) { return t >= 0; }));
    if (active == 0) continue;
    const Batch batch = make_batch(items);
    const Tensor hidden = encoder_->forward(batch, /*train=*/false);
    total += nn::cross_entropy(head_->forward(hidden), targets).item() *
             static_cast<double>(active);
    total_targets += active;
  }
  return total_targets == 0 ? 0.0
                            : total / static_cast<double>(total_targets);
}

std::vector<float> TrafficLM::next_logits(std::span<const int> ids) const {
  if (ids.empty())
    throw std::invalid_argument("TrafficLM::next_logits: empty input");
  const nn::InferenceGuard guard;  // logits only — never build the graph
  Batch batch;
  batch.batch_size = 1;
  batch.seq_len = ids.size();
  batch.token_ids.assign(ids.begin(), ids.end());
  batch.segment_ids.assign(ids.size(), 0);
  batch.attention_mask.assign(ids.size(), 1.0f);
  const Tensor hidden = encoder_->forward(batch, /*train=*/false);
  const Tensor logits = head_->forward(hidden);
  const std::size_t vocab = vocab_.size();
  const std::size_t last = (ids.size() - 1) * vocab;
  return {logits.data().begin() + last,
          logits.data().begin() + last + vocab};
}

std::vector<std::vector<float>> TrafficLM::next_logits_batch(
    std::span<const std::vector<int>> sequences) const {
  if (sequences.empty()) return {};
  std::size_t max_len = 0;
  for (const auto& ids : sequences) {
    if (ids.empty())
      throw std::invalid_argument("TrafficLM::next_logits_batch: empty input");
    max_len = std::max(max_len, ids.size());
  }
  if (max_len > encoder_->config().max_seq_len)
    throw std::invalid_argument(
        "TrafficLM::next_logits_batch: sequence exceeds max_seq_len");

  const nn::InferenceGuard guard;
  Batch batch;
  batch.batch_size = sequences.size();
  batch.seq_len = max_len;
  batch.token_ids.assign(sequences.size() * max_len, tok::Vocabulary::kPad);
  batch.segment_ids.assign(sequences.size() * max_len, 0);
  batch.attention_mask.assign(sequences.size() * max_len, 0.0f);
  for (std::size_t b = 0; b < sequences.size(); ++b) {
    const auto& ids = sequences[b];
    std::copy(ids.begin(), ids.end(),
              batch.token_ids.begin() +
                  static_cast<std::ptrdiff_t>(b * max_len));
    std::fill_n(batch.attention_mask.begin() +
                    static_cast<std::ptrdiff_t>(b * max_len),
                ids.size(), 1.0f);
  }
  const Tensor hidden = encoder_->forward(batch, /*train=*/false);

  // Head fast path: the LM head is row-independent, so apply it only to
  // each sequence's last real position ([B, D] rows gathered from the
  // padded [B*T, D] hidden states) instead of all B*T rows. Row-for-row
  // bitwise identical to head_->forward(hidden) at those positions.
  const std::size_t d_model = encoder_->config().d_model;
  Tensor last_hidden = Tensor::empty({sequences.size(), d_model});
  for (std::size_t b = 0; b < sequences.size(); ++b) {
    const std::size_t row = b * max_len + (sequences[b].size() - 1);
    std::copy_n(hidden.data().data() + row * d_model, d_model,
                last_hidden.data().data() + b * d_model);
  }
  const Tensor logits = head_->forward(last_hidden);  // [B, V]
  const std::size_t vocab = vocab_.size();
  std::vector<std::vector<float>> out(sequences.size());
  for (std::size_t b = 0; b < sequences.size(); ++b)
    out[b].assign(logits.data().begin() + b * vocab,
                  logits.data().begin() + (b + 1) * vocab);
  return out;
}

LmDecoder::LmDecoder(const TrafficLM& lm)
    : lm_(&lm), cache_(lm.encoder_->make_cache()) {}

std::vector<float> LmDecoder::advance(int token_id) {
  static const auto f_crash = fault::point("core.decode.crash");
  if (f_crash.fire()) throw fault::CrashInjected{"core.decode.crash"};
  const nn::InferenceGuard guard;
  const Tensor hidden = lm_->encoder_->forward_incremental(token_id, cache_);
  const Tensor logits = lm_->head_->forward(hidden);  // [1, V]
  return {logits.data().begin(), logits.data().end()};
}

double TrafficLM::score(const std::vector<std::string>& tokens) const {
  LmDecoder decoder(*this);
  return score(tokens, decoder);
}

double TrafficLM::score(const std::vector<std::string>& tokens,
                        LmDecoder& decoder) const {
  // Frame exactly like training data: [CLS] tokens... [SEP], truncated.
  std::vector<int> ids;
  ids.reserve(tokens.size() + 2);
  ids.push_back(tok::Vocabulary::kCls);
  for (const std::string& t : tokens) ids.push_back(vocab_.id(t));
  ids.push_back(tok::Vocabulary::kSep);
  if (ids.size() > encoder_->config().max_seq_len)
    ids.resize(encoder_->config().max_seq_len);
  if (ids.size() < 2) return 0.0;

  decoder.reset();
  double total = 0.0;
  std::size_t count = 0;
  for (std::size_t t = 0; t + 1 < ids.size(); ++t) {
    const std::vector<float> logits = decoder.advance(ids[t]);
    // Stable log-softmax at the realized next token, in double.
    float maxv = logits[0];
    for (float v : logits) maxv = std::max(maxv, v);
    double denom = 0.0;
    for (float v : logits) denom += std::exp(static_cast<double>(v - maxv));
    total -= static_cast<double>(logits[static_cast<std::size_t>(ids[t + 1])] -
                                 maxv) -
             std::log(denom);
    ++count;
  }
  return total / static_cast<double>(count);
}

std::vector<std::string> TrafficLM::sample(const SampleOptions& options,
                                           Rng& rng) const {
  LmDecoder decoder(*this);
  return sample(options, rng, decoder);
}

std::vector<std::string> TrafficLM::sample(const SampleOptions& options,
                                           Rng& rng,
                                           LmDecoder& decoder) const {
  std::vector<int> ids = {tok::Vocabulary::kCls};
  std::vector<std::string> out;
  // max_tokens + 1 accounts for [CLS]; compare before adding so a huge
  // max_tokens (e.g. SIZE_MAX) can't wrap to 0 and emit nothing.
  const std::size_t cap = encoder_->config().max_seq_len;
  const std::size_t limit =
      options.max_tokens >= cap ? cap : options.max_tokens + 1;
  // KV-cached decode: each step appends one token's K/V per layer instead
  // of re-running the whole prefix — logits are bit-identical to
  // next_logits(ids), so sampling draws the exact same tokens.
  decoder.reset();
  while (ids.size() < limit) {
    std::vector<float> logits = decoder.advance(ids.back());
    // Never emit padding/[CLS]/[MASK]; [SEP] ends the sequence.
    logits[tok::Vocabulary::kPad] = -1e9f;
    logits[tok::Vocabulary::kCls] = -1e9f;
    logits[tok::Vocabulary::kMask] = -1e9f;
    logits[tok::Vocabulary::kUnk] = -1e9f;

    // Temperature + optional top-k truncation, then softmax-sample.
    const float inv_temp =
        options.temperature > 0.0 ? 1.0f / static_cast<float>(
                                               options.temperature)
                                  : 1.0f;
    for (float& v : logits) v *= inv_temp;
    if (options.top_k > 0 && options.top_k < logits.size()) {
      std::vector<float> sorted = logits;
      std::nth_element(sorted.begin(),
                       sorted.begin() + static_cast<std::ptrdiff_t>(
                                            options.top_k - 1),
                       sorted.end(), std::greater<float>());
      const float cutoff = sorted[options.top_k - 1];
      for (float& v : logits)
        if (v < cutoff) v = -1e9f;
    }
    float max_logit = *std::max_element(logits.begin(), logits.end());
    std::vector<double> probs(logits.size());
    for (std::size_t i = 0; i < logits.size(); ++i)
      probs[i] = std::exp(static_cast<double>(logits[i]) - max_logit);
    const int token = static_cast<int>(rng.weighted(probs));

    if (token == tok::Vocabulary::kSep) break;
    ids.push_back(token);
    out.push_back(vocab_.token(token));
  }
  return out;
}

std::vector<std::vector<std::string>> TrafficLM::sample_corpus(
    std::size_t count, const SampleOptions& options, Rng& rng) const {
  std::vector<std::vector<std::string>> corpus;
  corpus.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto sequence = sample(options, rng);
    if (!sequence.empty()) corpus.push_back(std::move(sequence));
  }
  return corpus;
}

nn::ParameterList TrafficLM::parameters() const {
  nn::ParameterList params = encoder_->parameters();
  head_->collect(params);
  return params;
}

void TrafficLM::prequantize() const {
  encoder_->prequantize();
  head_->prequantize();
}

}  // namespace netfm::core
