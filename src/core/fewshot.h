// Few-shot classification on frozen foundation-model features — the
// GPT-3-motivated low-label regime of experiment E9. No gradients: class
// centroids in embedding space, cosine nearest-centroid prediction.
#pragma once

#include <string>
#include <vector>

#include "core/netfm.h"

namespace netfm::core {

class FewShotClassifier {
 public:
  /// `model` must outlive the classifier.
  FewShotClassifier(const NetFM& model, std::size_t max_seq_len)
      : model_(&model), max_seq_len_(max_seq_len) {}

  /// Adds one labeled example (label in [0, num_classes)).
  void add_example(const std::vector<std::string>& context, int label);

  /// Nearest-centroid prediction; -1 if no examples were added.
  int predict(const std::vector<std::string>& context) const;

  /// Per-class cosine similarity to each centroid (unnormalized scores).
  std::vector<double> scores(const std::vector<std::string>& context) const;

  std::size_t num_classes() const noexcept { return sums_.size(); }

 private:
  const NetFM* model_;
  std::size_t max_seq_len_;
  std::vector<std::vector<float>> sums_;  // per-class embedding sums
  std::vector<std::size_t> counts_;
};

}  // namespace netfm::core
