// Bridges token-string contexts (src/context) and model batches
// (src/model): special-token framing, padding, masked-token corruption,
// and segment-pair encoding for next-packet prediction.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "context/context.h"
#include "model/transformer.h"
#include "tokenize/vocab.h"

namespace netfm::core {

/// One encoded sequence: [CLS] tokens... [SEP] padded to a fixed length.
struct Encoded {
  std::vector<int> ids;
  std::vector<int> segments;      // 0 for single-segment, 0/1 for pairs
  std::vector<float> mask;        // 1 = real token
};

/// Encodes a single context. Truncates to fit `max_len` (>= 3).
Encoded encode_context(const std::vector<std::string>& tokens,
                       const tok::Vocabulary& vocab, std::size_t max_len);

/// Encodes a segment pair: [CLS] a [SEP] b [SEP], segments 0/1.
Encoded encode_pair(const std::vector<std::string>& first,
                    const std::vector<std::string>& second,
                    const tok::Vocabulary& vocab, std::size_t max_len);

/// BERT masking: each non-special position is chosen with `mask_prob`;
/// chosen positions become [MASK] 80% / random token 10% / unchanged 10%.
/// Returns per-position targets (original id at corrupted positions, -1
/// elsewhere) and corrupts `ids` in place. If `per_id_prob` is non-empty
/// (length = vocab size) it overrides `mask_prob` per token id —
/// field-targeted masking, the §4.1.4 "network-specific pre-training
/// task" that forces the model to predict selected protocol fields from
/// their context.
std::vector<int> apply_mlm_mask(std::vector<int>& ids,
                                const tok::Vocabulary& vocab, Rng& rng,
                                double mask_prob = 0.15,
                                std::span<const double> per_id_prob = {});

/// Per-id masking probabilities: tokens whose string starts with any of
/// `prefixes` get `focus_prob`, everything else `base_prob`.
std::vector<double> focused_mask_probabilities(
    const tok::Vocabulary& vocab, std::span<const std::string> prefixes,
    double focus_prob, double base_prob);

/// Packs encoded examples (all the same length) into a model batch.
model::Batch make_batch(std::span<const Encoded> examples);

}  // namespace netfm::core
