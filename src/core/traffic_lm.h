// TrafficLM — a GPT-style autoregressive model over network tokens.
//
// The paper's §4.2 proposes synthetic trace generators as the way around
// privacy-locked network data, and §3.1 lists "generator" tasks among the
// downstream uses. TrafficLM closes that loop inside this library: train
// it on tokenized flows from a private capture, then sample synthetic
// token sequences that preserve the corpus statistics — usable as a
// shareable pretraining corpus (experiment E12 quantifies how much
// downstream utility such synthetic data retains).
#pragma once

#include <memory>

#include "core/netfm.h"  // TrainLog, data encoding

namespace netfm::core {

struct LmTrainOptions {
  std::size_t steps = 300;
  std::size_t batch_size = 8;
  std::size_t max_seq_len = 48;
  float peak_lr = 1e-3f;
  std::size_t warmup_steps = 20;
  std::uint64_t seed = 77;
  /// Periodic atomic checkpointing + auto-resume, as in PretrainOptions:
  /// batches derive per-step from `seed`, so a resumed run replays the
  /// uninterrupted run's data order.
  std::string checkpoint_path;
  std::size_t checkpoint_every = 25;
};

struct SampleOptions {
  std::size_t max_tokens = 46;   // excludes the [CLS] start token
  double temperature = 1.0;      // <1 sharpens, >1 flattens
  std::size_t top_k = 0;         // 0 = full distribution
};

class LmDecoder;

class TrafficLM {
 public:
  /// Builds an untrained causal LM over the vocabulary.
  TrafficLM(tok::Vocabulary vocab, model::TransformerConfig config);

  const tok::Vocabulary& vocab() const noexcept { return vocab_; }

  /// Next-token training over token-string contexts ([CLS] acts as BOS,
  /// [SEP] as EOS). Returns per-step losses.
  TrainLog train(const std::vector<std::vector<std::string>>& corpus,
                 const LmTrainOptions& options);

  /// Streaming training over a memory-mapped sharded corpus through a
  /// prefetching data::StreamingLoader. Loss trajectory is bitwise equal
  /// to the in-RAM overload on the same corpus contents and options.
  TrainLog train(const data::CorpusReader& corpus,
                 const LmTrainOptions& options);

  /// Average next-token cross-entropy on a corpus (exp() = perplexity).
  double loss(const std::vector<std::vector<std::string>>& corpus,
              std::size_t max_seq_len) const;

  /// Samples one synthetic token sequence (without [CLS]/[SEP] framing).
  std::vector<std::string> sample(const SampleOptions& options,
                                  Rng& rng) const;

  /// Same draw through a caller-owned decoder (reset on entry): a pooled
  /// per-session decoder produces the exact tokens a fresh one would, so
  /// the serving layer can reuse KvCache allocations across requests.
  std::vector<std::string> sample(const SampleOptions& options, Rng& rng,
                                  LmDecoder& decoder) const;

  /// Samples a whole synthetic corpus.
  std::vector<std::vector<std::string>> sample_corpus(
      std::size_t count, const SampleOptions& options, Rng& rng) const;

  /// Mean next-token negative log-likelihood of one token sequence
  /// (framed [CLS] ... [SEP], truncated to max_seq_len). Runs through the
  /// KV-cached decoder, so a sequence of length T costs O(T^2) total work
  /// instead of the O(T^3) of scoring each prefix from scratch.
  double score(const std::vector<std::string>& tokens) const;

  /// score() through a caller-owned decoder (reset on entry). The cached
  /// logits are bitwise-equal after a reset, so a pooled per-session
  /// decoder returns the exact score a fresh one would.
  double score(const std::vector<std::string>& tokens,
               LmDecoder& decoder) const;

  /// score() for many sequences at once, one decoder per sequence (all on
  /// this model), run as lockstep batched decode steps — one padded
  /// forward per step across every still-active sequence via
  /// LmDecoder::advance_batch. Per-sequence math is untouched, so
  /// element i is bitwise equal to score(sequences[i], *decoders[i]).
  std::vector<double> score_batch(
      std::span<const std::vector<std::string>> sequences,
      std::span<LmDecoder* const> decoders) const;

  /// sample() for many streams at once (options[i]/rngs[i]/decoders[i]
  /// drive stream i), decoded in lockstep batched steps. Each stream draws
  /// from its own Rng with the per-step sampling math unchanged, so
  /// element i is bitwise equal to sample(options[i], *rngs[i],
  /// *decoders[i]). Streams drop out of the batch as they emit [SEP] or
  /// hit their token limit.
  std::vector<std::vector<std::string>> sample_batch(
      std::span<const SampleOptions> options, std::span<Rng* const> rngs,
      std::span<LmDecoder* const> decoders) const;

  /// A shared paged KV block pool for this model: `num_blocks` 0 defers to
  /// NETFM_KV_BLOCKS, else one full sequence. Hand it to the pool-taking
  /// LmDecoder constructor so many sessions share one reservation.
  std::shared_ptr<model::KvBlockPool> make_kv_pool(
      std::size_t num_blocks = 0) const;

  /// KV blocks one max_seq_len sequence needs (sizing unit for pools).
  std::size_t kv_blocks_per_sequence() const noexcept;

  nn::ParameterList parameters() const;

  /// Eagerly packs all int8 weight caches so the first quantized inference
  /// pays no pack cost (no-op when NETFM_QUANT is off).
  void prequantize() const;

  /// Logits for the next token after `ids` (ids start with [CLS]).
  /// Re-runs the full forward every call — the uncached reference path that
  /// LmDecoder is tested and benchmarked against. Throws invalid_argument
  /// on empty input.
  std::vector<float> next_logits(std::span<const int> ids) const;

  /// next_logits() for many sequences at once: pads to the longest
  /// sequence, runs one batched no-grad forward, and applies the LM head
  /// only to each sequence's last real position. Element-for-element
  /// bitwise identical to calling next_logits() per sequence — the padded
  /// forward the serving scheduler batches compatible requests into.
  std::vector<std::vector<float>> next_logits_batch(
      std::span<const std::vector<int>> sequences) const;

 private:
  friend class LmDecoder;

  /// Shared step loop behind both train overloads; `fetch(step, indices)`
  /// returns the encoded batch rows in data::batch_indices order.
  TrainLog train_impl(std::size_t corpus_size,
                      const std::function<std::vector<Encoded>(
                          std::size_t, std::span<const std::size_t>)>& fetch,
                      const LmTrainOptions& options);

  tok::Vocabulary vocab_;
  std::unique_ptr<model::TransformerEncoder> encoder_;
  std::unique_ptr<model::MlmHead> head_;  // tied decoder reused as LM head
};

/// Incremental decoder: feeds tokens one at a time through the paged
/// KV-cached fast path (model::PagedKvCache), so appending a token to a
/// T-token prefix costs O(T) instead of the O(T^2) full re-forward of
/// TrafficLM::next_logits — with bit-identical logits. One decoder per
/// generation stream; reset() (or a fresh decoder) starts a new stream and
/// is also required after any weight mutation. Not thread-safe, but
/// decoders on *distinct* caches may decode concurrently even when they
/// share one block pool.
class LmDecoder {
 public:
  /// Decoder with a private block pool sized for one full sequence — the
  /// drop-in equivalent of the old dense-cache decoder (it can always
  /// reach max_seq_len).
  explicit LmDecoder(const TrafficLM& lm);

  /// Decoder drawing KV blocks from a shared pool (from
  /// TrafficLM::make_kv_pool). advance() throws
  /// model::ContextFullError{pool_exhausted()=true} when the pool runs
  /// dry, leaving the cache untouched so the step can be retried after
  /// release_kv() elsewhere frees blocks.
  LmDecoder(const TrafficLM& lm, std::shared_ptr<model::KvBlockPool> pool);

  /// Feeds `token_id` at position cached_tokens() and returns the logits
  /// for the *next* token. Observes the `core.decode.crash` fault point;
  /// after an injected crash, reset() restores a clean (cold-cache) state.
  std::vector<float> advance(int token_id);

  /// One lockstep decode step across many decoders (all on one TrafficLM,
  /// all distinct): feeds token_ids[i] to decoders[i] and returns each
  /// next-token logits row. Row i is bitwise equal to
  /// decoders[i]->advance(token_ids[i]) — one padded forward replaces n
  /// serial ones. Observes `core.decode.crash` once per step; on
  /// ContextFullError no decoder has advanced.
  static std::vector<std::vector<float>> advance_batch(
      std::span<LmDecoder* const> decoders, std::span<const int> token_ids);

  /// Forgets the cached prefix; the next advance() starts a new sequence.
  /// Held KV blocks are kept for reuse (release_kv() returns them).
  void reset() noexcept { cache_.reset(); }

  /// reset() plus returning held KV blocks to the pool — what LRU session
  /// eviction calls so idle sessions stop pinning pool memory.
  void release_kv() noexcept { cache_.release(); }

  std::size_t cached_tokens() const noexcept { return cache_.length; }
  std::size_t held_kv_blocks() const noexcept { return cache_.held_blocks(); }

 private:
  const TrafficLM* lm_;
  model::PagedKvCache cache_;
};

}  // namespace netfm::core
