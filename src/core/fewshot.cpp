#include "core/fewshot.h"

#include <cmath>
#include <stdexcept>

namespace netfm::core {

void FewShotClassifier::add_example(const std::vector<std::string>& context,
                                    int label) {
  if (label < 0) throw std::invalid_argument("FewShot: negative label");
  const auto cls = static_cast<std::size_t>(label);
  const std::vector<float> vec = model_->embed(context, max_seq_len_);
  if (cls >= sums_.size()) {
    sums_.resize(cls + 1);
    counts_.resize(cls + 1, 0);
  }
  if (sums_[cls].empty()) sums_[cls].assign(vec.size(), 0.0f);
  for (std::size_t i = 0; i < vec.size(); ++i) sums_[cls][i] += vec[i];
  ++counts_[cls];
}

std::vector<double> FewShotClassifier::scores(
    const std::vector<std::string>& context) const {
  const std::vector<float> vec = model_->embed(context, max_seq_len_);
  double vec_norm = 0.0;
  for (float v : vec) vec_norm += static_cast<double>(v) * v;
  vec_norm = std::sqrt(vec_norm);

  std::vector<double> out(sums_.size(), -1.0);
  for (std::size_t cls = 0; cls < sums_.size(); ++cls) {
    if (counts_[cls] == 0) continue;
    double dot = 0.0, centroid_norm = 0.0;
    for (std::size_t i = 0; i < vec.size(); ++i) {
      const double c = sums_[cls][i] / static_cast<double>(counts_[cls]);
      dot += c * vec[i];
      centroid_norm += c * c;
    }
    centroid_norm = std::sqrt(centroid_norm);
    out[cls] = (vec_norm == 0.0 || centroid_norm == 0.0)
                   ? 0.0
                   : dot / (vec_norm * centroid_norm);
  }
  return out;
}

int FewShotClassifier::predict(
    const std::vector<std::string>& context) const {
  const std::vector<double> s = scores(context);
  int best = -1;
  double best_score = -2.0;
  for (std::size_t cls = 0; cls < s.size(); ++cls) {
    if (counts_[cls] == 0) continue;
    if (s[cls] > best_score) {
      best_score = s[cls];
      best = static_cast<int>(cls);
    }
  }
  return best;
}

}  // namespace netfm::core
