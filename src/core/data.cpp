#include "core/data.h"

#include <stdexcept>

namespace netfm::core {

Encoded encode_context(const std::vector<std::string>& tokens,
                       const tok::Vocabulary& vocab, std::size_t max_len) {
  if (max_len < 3)
    throw std::invalid_argument("encode_context: max_len must be >= 3");
  Encoded out;
  out.ids.reserve(max_len);
  out.ids.push_back(tok::Vocabulary::kCls);
  const std::size_t budget = max_len - 2;
  for (std::size_t i = 0; i < tokens.size() && i < budget; ++i)
    out.ids.push_back(vocab.id(tokens[i]));
  out.ids.push_back(tok::Vocabulary::kSep);

  out.mask.assign(max_len, 0.0f);
  for (std::size_t i = 0; i < out.ids.size(); ++i) out.mask[i] = 1.0f;
  out.ids.resize(max_len, tok::Vocabulary::kPad);
  out.segments.assign(max_len, 0);
  return out;
}

Encoded encode_pair(const std::vector<std::string>& first,
                    const std::vector<std::string>& second,
                    const tok::Vocabulary& vocab, std::size_t max_len) {
  if (max_len < 5)
    throw std::invalid_argument("encode_pair: max_len must be >= 5");
  Encoded out;
  out.ids.reserve(max_len);
  out.segments.reserve(max_len);
  const std::size_t budget = max_len - 3;
  const std::size_t first_budget = budget / 2;
  const std::size_t first_len = std::min(first.size(), first_budget);
  const std::size_t second_len = std::min(second.size(), budget - first_len);

  out.ids.push_back(tok::Vocabulary::kCls);
  out.segments.push_back(0);
  for (std::size_t i = 0; i < first_len; ++i) {
    out.ids.push_back(vocab.id(first[i]));
    out.segments.push_back(0);
  }
  out.ids.push_back(tok::Vocabulary::kSep);
  out.segments.push_back(0);
  for (std::size_t i = 0; i < second_len; ++i) {
    out.ids.push_back(vocab.id(second[i]));
    out.segments.push_back(1);
  }
  out.ids.push_back(tok::Vocabulary::kSep);
  out.segments.push_back(1);

  out.mask.assign(max_len, 0.0f);
  for (std::size_t i = 0; i < out.ids.size(); ++i) out.mask[i] = 1.0f;
  out.ids.resize(max_len, tok::Vocabulary::kPad);
  out.segments.resize(max_len, 0);
  return out;
}

std::vector<int> apply_mlm_mask(std::vector<int>& ids,
                                const tok::Vocabulary& vocab, Rng& rng,
                                double mask_prob,
                                std::span<const double> per_id_prob) {
  std::vector<int> targets(ids.size(), -1);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const int id = ids[i];
    if (id < tok::Vocabulary::kNumSpecial) continue;  // never corrupt specials
    const double prob =
        per_id_prob.empty()
            ? mask_prob
            : per_id_prob[static_cast<std::size_t>(id)];
    if (!rng.chance(prob)) continue;
    targets[i] = id;
    const double roll = rng.uniform01();
    if (roll < 0.8) {
      ids[i] = tok::Vocabulary::kMask;
    } else if (roll < 0.9) {
      // Random non-special replacement token.
      const std::size_t candidates = vocab.size() - tok::Vocabulary::kNumSpecial;
      if (candidates > 0)
        ids[i] = tok::Vocabulary::kNumSpecial +
                 static_cast<int>(rng.uniform(candidates));
    }  // else: keep the original token (but still predict it)
  }
  return targets;
}

std::vector<double> focused_mask_probabilities(
    const tok::Vocabulary& vocab, std::span<const std::string> prefixes,
    double focus_prob, double base_prob) {
  std::vector<double> probs(vocab.size(), base_prob);
  for (std::size_t id = tok::Vocabulary::kNumSpecial; id < vocab.size();
       ++id) {
    const std::string& token = vocab.token(static_cast<int>(id));
    for (const std::string& prefix : prefixes)
      if (token.rfind(prefix, 0) == 0) {
        probs[id] = focus_prob;
        break;
      }
  }
  return probs;
}

model::Batch make_batch(std::span<const Encoded> examples) {
  if (examples.empty())
    throw std::invalid_argument("make_batch: empty batch");
  model::Batch batch;
  batch.batch_size = examples.size();
  batch.seq_len = examples[0].ids.size();
  batch.token_ids.reserve(batch.batch_size * batch.seq_len);
  for (const Encoded& ex : examples) {
    if (ex.ids.size() != batch.seq_len)
      throw std::invalid_argument("make_batch: ragged batch");
    batch.token_ids.insert(batch.token_ids.end(), ex.ids.begin(),
                           ex.ids.end());
    batch.segment_ids.insert(batch.segment_ids.end(), ex.segments.begin(),
                             ex.segments.end());
    batch.attention_mask.insert(batch.attention_mask.end(), ex.mask.begin(),
                                ex.mask.end());
  }
  return batch;
}

}  // namespace netfm::core
